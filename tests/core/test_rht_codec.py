"""Tests for the RHT/DRIVE-style trimmable codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RHTCodec, SignMagnitudeCodec, nmse, unbiased_row_scales


def gradient(n=4096, seed=0):
    return np.random.default_rng(seed).standard_normal(n).astype(np.float32).astype(np.float64)


def heavy_tailed(n=4096, seed=0):
    """Gradient-like heavy-tailed vector (a few huge coordinates)."""
    rng = np.random.default_rng(seed)
    return rng.standard_t(df=2, size=n)


class TestRowScales:
    def test_gaussian_rows_scale_near_theory(self):
        rng = np.random.default_rng(0)
        rows = rng.standard_normal((8, 65536))
        scales = unbiased_row_scales(rows)
        # E‖r‖² / E|r| for a unit Gaussian is sqrt(pi/2) ≈ 1.2533.
        assert np.allclose(scales, np.sqrt(np.pi / 2), atol=0.02)

    def test_zero_row_gives_zero_scale(self):
        rows = np.zeros((2, 16))
        assert np.array_equal(unbiased_row_scales(rows), [0.0, 0.0])


class TestLossless:
    def test_untrimmed_decode_is_fp32_exact(self):
        x = gradient()
        codec = RHTCodec(root_seed=1, row_size=1024)
        decoded = codec.decode(codec.encode(x))
        # The rotation runs in float64 but the wire format is fp32; the
        # paper claims *zero space overhead* exact encoding of the rotated
        # fp32 values, so error is only fp32 rounding of the rotation.
        assert nmse(x, decoded) < 1e-13

    def test_length_padded_to_rows(self):
        codec = RHTCodec(row_size=256)
        enc = codec.encode(gradient(300))
        assert enc.length == 512
        assert enc.metadata.original_length == 300

    def test_decode_returns_original_length(self):
        codec = RHTCodec(row_size=256)
        x = gradient(300)
        assert codec.decode(codec.encode(x)).shape == (300,)

    def test_small_input_small_row(self):
        codec = RHTCodec(row_size=2**15)
        x = gradient(40)
        enc = codec.encode(x)
        assert enc.metadata.row_size == 64
        assert nmse(x, codec.decode(enc)) < 1e-13


class TestTrimmedDecoding:
    def test_fully_trimmed_error_matches_drive_theory(self):
        """With everything trimmed, per-coordinate NMSE ≈ pi/2 - 1."""
        x = gradient(2**16, seed=5)
        codec = RHTCodec(root_seed=2, row_size=4096)
        enc = codec.encode(x)
        decoded = codec.decode(enc, trimmed=np.ones(enc.length, dtype=bool))
        assert abs(nmse(x, decoded) - (np.pi / 2 - 1)) < 0.05

    def test_partial_trim_scales_error(self):
        x = gradient(2**14, seed=6)
        codec = RHTCodec(root_seed=2, row_size=2048)
        enc = codec.encode(x)
        rng = np.random.default_rng(0)
        errors = []
        for rate in [0.1, 0.5, 1.0]:
            mask = rng.random(enc.length) < rate
            errors.append(nmse(x, codec.decode(enc, trimmed=mask)))
        assert errors[0] < errors[1] < errors[2]

    def test_rht_beats_sign_on_heavy_tails(self):
        """The rotation spreads outliers, so RHT decodes heavy-tailed
        gradients far better than per-coordinate sign quantization."""
        x = heavy_tailed(2**14, seed=7)
        rht = RHTCodec(root_seed=1, row_size=2048)
        sign = SignMagnitudeCodec()
        enc_r = rht.encode(x)
        enc_s = sign.encode(x)
        err_r = nmse(x, rht.decode(enc_r, trimmed=np.ones(enc_r.length, dtype=bool)))
        err_s = nmse(x, sign.decode(enc_s, trimmed=np.ones(enc_s.length, dtype=bool)))
        assert err_r < err_s * 0.75

    def test_missing_rows_decode_to_zero_contribution(self):
        x = gradient(1024)
        codec = RHTCodec(root_seed=3, row_size=1024)
        enc = codec.encode(x)
        decoded = codec.decode(enc, missing=np.ones(enc.length, dtype=bool))
        assert np.allclose(decoded, 0.0)

    def test_trim_and_missing_combine(self):
        x = gradient(2048)
        codec = RHTCodec(root_seed=3, row_size=1024)
        enc = codec.encode(x)
        trimmed = np.zeros(enc.length, dtype=bool)
        missing = np.zeros(enc.length, dtype=bool)
        trimmed[: enc.length // 2] = True
        missing[enc.length // 2 :] = True
        decoded = codec.decode(enc, trimmed=trimmed, missing=missing)
        assert np.all(np.isfinite(decoded))
        assert nmse(x, decoded) < 2.0


class TestValidation:
    def test_decode_rejects_wrong_codec(self):
        enc = SignMagnitudeCodec().encode(gradient(64))
        with pytest.raises(ValueError, match="cannot decode"):
            RHTCodec().decode(enc)

    def test_decode_rejects_bad_mask(self):
        codec = RHTCodec(row_size=64)
        enc = codec.encode(gradient(64))
        with pytest.raises(ValueError, match="mask shape"):
            codec.decode(enc, trimmed=np.zeros(3, dtype=bool))

    def test_epoch_message_change_rotation(self):
        codec = RHTCodec(root_seed=0, row_size=256)
        x = gradient(256)
        a = codec.encode(x, epoch=1, message_id=1)
        b = codec.encode(x, epoch=1, message_id=2)
        assert a.metadata.seed != b.metadata.seed
        assert not np.array_equal(a.heads, b.heads)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=2000),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_rht_untrimmed_round_trip_property(n, seed):
    """Untrimmed RHT decode recovers any vector to fp32 precision."""
    x = np.random.default_rng(seed).standard_normal(n)
    codec = RHTCodec(root_seed=seed, row_size=512)
    decoded = codec.decode(codec.encode(x))
    assert nmse(x, decoded) < 1e-12


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rate=st.floats(min_value=0.0, max_value=1.0),
)
def test_rht_trimmed_error_bounded_property(seed, rate):
    """Trimmed-decode NMSE never exceeds the full-trim DRIVE bound (+slack)."""
    x = np.random.default_rng(seed).standard_normal(4096)
    codec = RHTCodec(root_seed=seed, row_size=1024)
    enc = codec.encode(x)
    mask = np.random.default_rng(seed + 1).random(enc.length) < rate
    err = nmse(x, codec.decode(enc, trimmed=mask))
    assert err <= (np.pi / 2 - 1) + 0.25
