"""Tests for the EDEN-style multi-bit trimmable codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EdenCodec, codec_by_name, lloyd_max_centroids, nmse
from repro.core import decode_packets, packetize


def gradient(n=2**13, seed=0):
    return np.random.default_rng(seed).standard_normal(n)


class TestLloydMaxTables:
    def test_one_bit_is_mean_of_half_normal(self):
        centroids = lloyd_max_centroids(1)
        assert np.allclose(np.abs(centroids), np.sqrt(2 / np.pi), atol=1e-6)

    def test_symmetric_and_sorted(self):
        for bits in range(1, 9):
            c = lloyd_max_centroids(bits)
            assert c.size == 1 << bits
            assert np.allclose(c, -c[::-1])
            assert np.all(np.diff(c) > 0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            lloyd_max_centroids(0)
        with pytest.raises(ValueError):
            lloyd_max_centroids(9)

    def test_quantizer_mse_matches_theory(self):
        """Lloyd-Max MSE for N(0,1): 1-bit ~0.3634, 2-bit ~0.1175."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal(200_000)
        for bits, expected in [(1, 0.3634), (2, 0.1175), (3, 0.03454)]:
            centroids = lloyd_max_centroids(bits)
            boundaries = (centroids[1:] + centroids[:-1]) / 2
            quantized = centroids[np.searchsorted(boundaries, x)]
            mse = np.mean((x - quantized) ** 2)
            assert mse == pytest.approx(expected, rel=0.05)


class TestEdenCodec:
    def test_registered(self):
        codec = codec_by_name("eden", root_seed=1, head_bits=2)
        assert isinstance(codec, EdenCodec)
        assert codec.head_bits == 2

    def test_untrimmed_near_exact(self):
        x = gradient()
        for bits in [1, 4, 8]:
            codec = EdenCodec(root_seed=1, head_bits=bits, row_size=1024)
            assert nmse(x, codec.decode(codec.encode(x))) < 1e-10

    def test_trimmed_quality_improves_with_head_bits(self):
        x = gradient(2**14, seed=3)
        errors = []
        for bits in [1, 2, 4, 8]:
            codec = EdenCodec(root_seed=1, head_bits=bits, row_size=2048)
            enc = codec.encode(x)
            errors.append(nmse(x, codec.decode(enc, trimmed=np.ones(enc.length, bool))))
        assert errors == sorted(errors, reverse=True)
        assert errors[0] == pytest.approx(1 - 2 / np.pi, abs=0.03)  # 1-bit MMSE
        assert errors[-1] < 1e-3  # 8-bit heads are excellent

    def test_one_bit_head_beats_drive_scale(self):
        """Eden's MMSE decode (sqrt(2/pi)·σ) has lower NMSE than the RHT
        codec's unbiased DRIVE scale at full trim."""
        from repro.core import RHTCodec

        x = gradient(2**14, seed=5)
        eden = EdenCodec(root_seed=2, head_bits=1, row_size=2048)
        rht = RHTCodec(root_seed=2, row_size=2048)
        e_enc = eden.encode(x)
        r_enc = rht.encode(x)
        e_err = nmse(x, eden.decode(e_enc, trimmed=np.ones(e_enc.length, bool)))
        r_err = nmse(x, rht.decode(r_enc, trimmed=np.ones(r_enc.length, bool)))
        assert e_err < r_err

    def test_packet_path_any_head_width(self):
        x = gradient(2**13, seed=7)
        for bits in [1, 3, 8]:
            codec = EdenCodec(root_seed=4, head_bits=bits, row_size=1024)
            packets = packetize(codec.encode(x), "a", "b")
            wire = [packets[0]] + [p.trim() for p in packets[1:]]
            decoded = decode_packets(wire, codec)
            assert np.all(np.isfinite(decoded))
            assert nmse(x, decoded) < 0.5

    def test_registry_decode_adapts_head_width(self):
        """decode_packets reconstructs the codec from the wire id with
        default parameters; decode must still honor the message's P."""
        x = gradient(2**12, seed=8)
        codec = EdenCodec(root_seed=4, head_bits=2, row_size=1024)
        packets = packetize(codec.encode(x), "a", "b")
        decoded = decode_packets(packets)  # no codec passed
        assert nmse(x, decoded) < 1e-10

    def test_missing_decodes_to_zero_contribution(self):
        x = gradient(1024)
        codec = EdenCodec(root_seed=1, head_bits=4, row_size=1024)
        enc = codec.encode(x)
        decoded = codec.decode(enc, missing=np.ones(enc.length, bool))
        assert np.allclose(decoded, 0.0)

    def test_zero_gradient(self):
        codec = EdenCodec(root_seed=1, head_bits=4, row_size=64)
        x = np.zeros(64)
        enc = codec.encode(x)
        decoded = codec.decode(enc, trimmed=np.ones(enc.length, bool))
        assert np.all(np.isfinite(decoded))

    def test_invalid_head_bits(self):
        with pytest.raises(ValueError):
            EdenCodec(head_bits=0)
        with pytest.raises(ValueError):
            EdenCodec(head_bits=9)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=1500),
    bits=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_eden_untrimmed_round_trip_property(n, bits, seed):
    """Untrimmed Eden decode recovers any vector at any head width."""
    x = np.random.default_rng(seed).standard_normal(n)
    codec = EdenCodec(root_seed=seed, head_bits=bits, row_size=512)
    assert nmse(x, codec.decode(codec.encode(x))) < 1e-8
