"""Tests for packet-layout arithmetic, incl. the paper's worked example."""

import numpy as np
import pytest

from repro.core import (
    TrimmableLayout,
    coords_per_packet,
    inverse_order,
    magnitude_order,
    paper_worked_example,
)


class TestPaperWorkedExample:
    """Section 2: MTU 1500, 42 B header, P=1 -> n≈365, trim at 87 B, 94.2%."""

    def test_coordinate_count(self):
        layout = paper_worked_example()
        # floor(1458*8 / 32) = 364; the paper rounds to "about 365".
        assert layout.coords in (364, 365)

    def test_trim_threshold_87_bytes(self):
        layout = paper_worked_example()
        # 42 B wire header + ceil(364/8)=46 B of heads ≈ the paper's 87 B
        # (the paper packs 365 coords -> 45.6 -> "45 bytes", 42+45=87).
        assert abs(layout.trim_threshold - 87) <= 1

    def test_compression_ratio(self):
        layout = paper_worked_example()
        assert abs(layout.compression_ratio - 0.942) < 0.002

    def test_payload_trim_fraction(self):
        assert np.isclose(paper_worked_example().trim_fraction_of_payload, 31 / 32)


class TestLayoutGeometry:
    def test_self_describing_header_reduces_coords(self):
        ours = TrimmableLayout()
        paper = paper_worked_example()
        assert ours.coords < paper.coords

    def test_describe_mentions_key_numbers(self):
        text = paper_worked_example().describe()
        assert "MTU 1500" in text
        assert "P=1" in text

    def test_coords_per_packet_multilevel(self):
        # 8-bit heads fit fewer coordinates per packet at the same MTU.
        assert coords_per_packet(1500, 8, 24) == coords_per_packet(1500, 1, 31)
        assert coords_per_packet(1500, 1, 7) > coords_per_packet(1500, 1, 31)

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValueError):
            coords_per_packet(40)
        with pytest.raises(ValueError, match="cannot fit"):
            coords_per_packet(75, 16, 16)  # 1-byte payload < 4-byte coord


class TestMagnitudeOrder:
    def test_is_a_permutation(self):
        flat = np.random.default_rng(0).standard_normal(1000)
        order = magnitude_order(flat, coords_per_pkt=100)
        assert sorted(order.tolist()) == list(range(1000))

    def test_within_packet_descending_magnitude(self):
        flat = np.random.default_rng(1).standard_normal(500)
        order = magnitude_order(flat, coords_per_pkt=50)
        wire = np.abs(flat[order])
        for p in range(10):
            packet = wire[p * 50 : (p + 1) * 50]
            assert np.all(np.diff(packet) <= 1e-12)

    def test_tail_positions_hold_smallest_coords(self):
        """Trimming the last 20% of every packet discards (close to) the
        globally smallest 20% of coordinates — the MLT observation."""
        flat = np.random.default_rng(2).standard_normal(1000)
        order = magnitude_order(flat, coords_per_pkt=100)
        wire = np.abs(flat[order])
        tails = np.concatenate([wire[p * 100 + 80 : (p + 1) * 100] for p in range(10)])
        threshold = np.quantile(np.abs(flat), 0.2)
        assert np.all(tails <= threshold + 1e-12)

    def test_inverse_order_round_trip(self):
        flat = np.random.default_rng(3).standard_normal(333)
        order = magnitude_order(flat, coords_per_pkt=64)
        wire = flat[order]
        assert np.array_equal(wire[inverse_order(order)], flat)

    def test_uneven_final_packet(self):
        flat = np.random.default_rng(4).standard_normal(105)
        order = magnitude_order(flat, coords_per_pkt=50)
        assert sorted(order.tolist()) == list(range(105))

    def test_rejects_bad_packet_size(self):
        with pytest.raises(ValueError):
            magnitude_order(np.ones(10), 0)
