"""Robustness: hostile inputs never crash, they raise clean errors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GradientMetadata, codec_by_name
from repro.packet import GradientHeader


ALL_CODECS = ["sign", "sq", "sd", "rht", "eden"]


class TestNonFiniteInputsRejected:
    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_nan_rejected(self, name):
        codec = codec_by_name(name, root_seed=0)
        bad = np.ones(100)
        bad[7] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            codec.encode(bad)

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_inf_rejected(self, name):
        codec = codec_by_name(name, root_seed=0)
        bad = np.ones(100)
        bad[0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            codec.encode(bad)

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_empty_rejected(self, name):
        codec = codec_by_name(name, root_seed=0)
        with pytest.raises(ValueError, match="empty"):
            codec.encode(np.zeros(0))


@settings(max_examples=100)
@given(data=st.binary(min_size=0, max_size=64))
def test_header_parser_never_crashes(data):
    """Random bytes either parse into a header or raise ValueError."""
    try:
        header = GradientHeader.from_bytes(data)
    except ValueError:
        return
    assert header.coord_count >= 0


@settings(max_examples=100)
@given(data=st.binary(min_size=0, max_size=200))
def test_metadata_parser_never_crashes(data):
    """Random bytes either parse into metadata or raise ValueError."""
    try:
        meta = GradientMetadata.from_bytes(data)
    except ValueError:
        return
    assert meta.original_length >= 0


@settings(max_examples=50)
@given(
    cut=st.integers(min_value=0, max_value=200),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_truncated_metadata_raises_not_corrupts(cut, seed):
    """Any prefix truncation of a real metadata payload raises."""
    meta = GradientMetadata(
        message_id=1,
        epoch=2,
        original_length=1000,
        row_size=256,
        seed=seed,
        sigma=1.0,
        row_scales=np.random.default_rng(seed).random(8),
    )
    payload = meta.to_bytes()
    truncated = payload[: min(cut, len(payload) - 1)]
    with pytest.raises(ValueError):
        GradientMetadata.from_bytes(truncated)
