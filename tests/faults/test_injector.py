"""Unit tests for the fault injector's mechanics.

These drive the injector against tiny hand-built scenarios and check
the physical layer directly: corruption mutates a *copy* (the sender's
buffer stays pristine for retransmission), ACK loss hits only control
packets, flaps lose everything mid-air, and blackouts drop at the
switch with their own drop kind.
"""

import numpy as np
import pytest

from repro.core import RHTCodec, packetize
from repro.faults import FaultInjector, FaultSpec, Scenario
from repro.net import dumbbell, impairment_summary
from repro.packet.packet import Packet
from repro.transport import GoBackNReceiver, GoBackNSender


def make_scenario(*faults, **kwargs):
    return Scenario(
        name="adhoc", description="test", faults=tuple(faults), **kwargs
    )


def run_message(scenario, seed=0, coords=4000, until=0.2, max_retries=None):
    net = dumbbell(pairs=1)
    injector = FaultInjector(net, scenario, root_seed=seed)
    injector.install()
    codec = RHTCodec(root_seed=seed)
    grad = np.random.default_rng(seed).standard_normal(coords).astype(np.float32)
    packets = packetize(codec.encode(grad), src="tx0", dst="rx0", flow_id=9)
    sender = GoBackNSender(net.hosts["tx0"], flow_id=9)
    if max_retries is not None:
        sender.max_retries = max_retries
    messages = []
    failures = []
    GoBackNReceiver(net.hosts["rx0"], flow_id=9, on_message=messages.append)
    sender.send_message(packets, on_failure=failures.append)
    net.sim.run(until=until)
    return net, injector, sender, packets, messages, failures


class TestCorruption:
    def test_sender_copy_stays_pristine(self):
        """Bit flips land on a copy: the sender's retransmit buffer must
        keep the original payload, or a transient fault becomes permanent."""
        scenario = make_scenario(FaultSpec("corrupt", "s0->s1", rate=1.0, stop_s=1e-4))
        net, injector, sender, packets, messages, _ = run_message(scenario)
        assert injector.counts.get("corrupt", 0) > 0
        for pkt in packets:
            assert pkt.verify(), "sender-side packet was mutated in place"
        # After the corruption window closes, retransmissions deliver.
        assert sender.done and len(messages) == 1

    def test_receiver_detects_and_rejects(self):
        scenario = make_scenario(FaultSpec("corrupt", "s0->s1", rate=1.0, stop_s=5e-5))
        net, injector, sender, _, messages, _ = run_message(scenario)
        assert len(messages) == 1
        for pkt in messages[0]:
            assert pkt.verify(), "corrupted payload reached on_message"

    def test_empty_payloads_skipped(self):
        injector = FaultInjector(
            dumbbell(pairs=1),
            make_scenario(FaultSpec("corrupt", "s0->s1", rate=1.0)),
            root_seed=0,
        )
        gen = np.random.default_rng(0)
        pkt = Packet(src="a", dst="b", payload=b"", flow_id=1)
        # _flip_bits is never called for empty payloads by the stage; the
        # stage itself must pass such packets through untouched.
        injector.install()
        hook = injector.network.link_between("s0", "s1").delivery_hook
        assert hook(pkt) == [(0.0, pkt)]


class TestAckLoss:
    def test_only_acks_are_lost(self):
        scenario = make_scenario(FaultSpec("ack-loss", "s1->s0", rate=1.0, stop_s=5e-5))
        net, injector, sender, _, messages, _ = run_message(scenario)
        assert injector.counts.get("ack-loss", 0) > 0
        for event in injector.events:
            assert event["fault"] == "ack-loss"
        assert sender.done and len(messages) == 1

    def test_persistent_ack_blackout_surrenders(self):
        scenario = make_scenario(FaultSpec("ack-loss", "s1->s0", rate=1.0))
        net, injector, sender, _, messages, failures = run_message(
            scenario, max_retries=10, until=2.0
        )
        assert not messages
        assert sender.failed
        assert len(failures) == 1
        assert "max_retries" in failures[0].reason


class TestDuplication:
    def test_duplicates_delivered_once_to_message(self):
        scenario = make_scenario(FaultSpec("duplicate", "s0->s1", rate=1.0))
        net, injector, sender, _, messages, _ = run_message(scenario)
        assert injector.counts["duplicate"] > 0
        assert len(messages) == 1
        seqs = [p.seq for p in messages[0]]
        assert len(seqs) == len(set(seqs))


class TestReorder:
    def test_bounded_jitter(self):
        scenario = make_scenario(
            FaultSpec("reorder", "s0->s1", rate=1.0, jitter_s=20e-6)
        )
        net, injector, sender, _, messages, _ = run_message(scenario)
        assert injector.counts["reorder"] > 0
        for event in injector.events:
            assert 0.0 <= event["extra_delay_s"] <= 20e-6
        # Go-back-N still reassembles in order.
        assert len(messages) == 1
        assert [p.seq for p in messages[0]] == sorted(p.seq for p in messages[0])


class TestFlap:
    def test_down_interval_loses_packets(self):
        # start_s=0 so the link is already dark when the burst begins
        # (at 100 Gb/s the whole message serializes in microseconds).
        scenario = make_scenario(
            FaultSpec("flap", "s0->s1", start_s=0.0, down_s=5e-4, period_s=1e-3,
                      stop_s=5e-3)
        )
        net, injector, sender, _, messages, _ = run_message(scenario)
        link = net.link_between("s0", "s1")
        assert link.packets_lost_down > 0
        assert link.up  # restored after the last cycle
        summary = impairment_summary(net)
        assert summary["s0->s1"]["packets_lost_down"] == link.packets_lost_down
        # down/up events alternate, starting with down.
        states = [e["state"] for e in injector.events]
        assert states[0] == "down"
        assert all(a != b for a, b in zip(states, states[1:]))
        assert sender.done and len(messages) == 1


class TestBlackout:
    def test_switch_drops_with_blackout_kind(self):
        scenario = make_scenario(
            FaultSpec("blackout", "s1:rx0", start_s=0.0, down_s=5e-4)
        )
        net, injector, sender, _, messages, _ = run_message(scenario)
        assert net.switches["s1"].stats.drops_by_kind.get("port-blackout", 0) > 0
        assert "rx0" not in net.switches["s1"].ports_down  # restored
        assert sender.done and len(messages) == 1

    def test_unknown_port_rejected(self):
        net = dumbbell(pairs=1)
        scenario = make_scenario(
            FaultSpec("blackout", "s1:tx9", start_s=0.0, down_s=1e-3)
        )
        with pytest.raises(ValueError, match="no port"):
            FaultInjector(net, scenario, root_seed=0).install()


class TestSwitchDown:
    def test_dead_device_drops_then_recovery_completes(self):
        scenario = make_scenario(
            FaultSpec("switch-down", "switch:s0", start_s=0.0, down_s=5e-4)
        )
        net, injector, sender, _, messages, _ = run_message(scenario)
        s0 = net.switches["s0"]
        assert s0.stats.drops_by_kind.get("switch-down", 0) > 0
        assert not s0.failed  # revived
        assert all(link.up for link in s0.ports.values())
        # The adjacent switch heard about the death and the recovery.
        assert "s0" not in net.switches["s1"].ports_down
        assert sender.done and len(messages) == 1

    def test_records_adjacency(self):
        scenario = make_scenario(
            FaultSpec("switch-down", "switch:s0", start_s=0.0, down_s=5e-4)
        )
        net, injector, *_ = run_message(scenario)
        down = [e for e in injector.events if e["state"] == "down"]
        assert down and down[0]["adjacent"] == ["s1"]

    def test_unknown_switch_rejected(self):
        net = dumbbell(pairs=1)
        scenario = make_scenario(
            FaultSpec("switch-down", "switch:s9", start_s=0.0, down_s=1e-3)
        )
        with pytest.raises(ValueError, match="no switch"):
            FaultInjector(net, scenario, root_seed=0).install()


class TestPortFlap:
    def test_layer1_flap_loses_without_rerouting(self):
        scenario = make_scenario(
            FaultSpec("port-flap", "s0:s1", start_s=0.0, down_s=5e-4,
                      period_s=1e-3, stop_s=5e-3)
        )
        net, injector, sender, _, messages, _ = run_message(scenario)
        link = net.link_between("s0", "s1")
        assert link.packets_lost_down > 0
        assert link.up  # restored after the last cycle
        # The control plane never saw it: no port-down, no reroutes, no
        # switch-side drops.
        s0 = net.switches["s0"]
        assert not s0.ports_down
        assert s0.stats.reroutes == 0
        assert s0.stats.drops_by_kind.get("blackhole", 0) == 0
        assert sender.done and len(messages) == 1

    def test_unknown_port_rejected(self):
        net = dumbbell(pairs=1)
        scenario = make_scenario(
            FaultSpec("port-flap", "s0:rx9", start_s=0.0, down_s=1e-3)
        )
        with pytest.raises(ValueError, match="no port"):
            FaultInjector(net, scenario, root_seed=0).install()


class TestGrayFailure:
    def test_silent_drops_while_port_stays_up(self):
        scenario = make_scenario(
            FaultSpec("gray-failure", "s0->s1", rate=0.3, stop_s=1e-4)
        )
        net, injector, sender, _, messages, _ = run_message(scenario)
        drops = [e for e in injector.events if e.get("effect") == "drop"]
        assert drops
        # Gray: the port is up and the link never flapped.
        link = net.link_between("s0", "s1")
        assert link.up and link.packets_lost_down == 0
        assert not net.switches["s0"].ports_down
        assert sender.done and len(messages) == 1

    def test_corruption_arm_detected_end_to_end(self):
        scenario = make_scenario(
            FaultSpec("gray-failure", "s0->s1", corrupt_rate=1.0, stop_s=5e-5)
        )
        net, injector, sender, packets, messages, _ = run_message(scenario)
        corrupts = [e for e in injector.events if e.get("effect") == "corrupt"]
        assert corrupts
        for pkt in packets:
            assert pkt.verify(), "sender-side packet was mutated in place"
        assert len(messages) == 1
        for pkt in messages[0]:
            assert pkt.verify(), "corrupted payload reached on_message"

    def test_deterministic_event_stream(self):
        scenario = make_scenario(
            FaultSpec("gray-failure", "s0->s1", rate=0.2, corrupt_rate=0.2)
        )
        first = run_message(scenario, seed=3)[1].events
        second = run_message(scenario, seed=3)[1].events
        assert first == second


class TestInstallSemantics:
    def test_install_is_once_only(self):
        injector = FaultInjector(
            dumbbell(pairs=1),
            make_scenario(FaultSpec("corrupt", "s0->s1", rate=0.5)),
            root_seed=0,
        )
        injector.install()
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install()

    def test_unknown_link_rejected(self):
        net = dumbbell(pairs=1)
        scenario = make_scenario(FaultSpec("corrupt", "s0->s9", rate=0.5))
        with pytest.raises((ValueError, KeyError)):
            FaultInjector(net, scenario, root_seed=0).install()

    def test_multiple_specs_compose_on_one_link(self):
        scenario = make_scenario(
            FaultSpec("corrupt", "s0->s1", rate=1.0, stop_s=5e-5),
            FaultSpec("duplicate", "s0->s1", rate=1.0, stop_s=5e-5),
        )
        net, injector, sender, _, messages, _ = run_message(scenario)
        assert injector.counts.get("corrupt", 0) > 0
        assert injector.counts.get("duplicate", 0) > 0
        assert sender.done and len(messages) == 1
