"""Every preset's fault targets remap cleanly onto the k=4 fat-tree.

``_remap_scenario`` rewrites dumbbell role names (``s0->s1``,
``s1:rx0``, ``switch:s0``, ...) onto the ECMP path pair 0 actually
hashes to.  A dangling name would only surface when someone runs that
preset on the fat-tree topology — this suite closes the gap by checking
all presets x several ECMP seeds at build time, without simulating.
"""

import pytest

from repro.faults import FaultInjector, PRESETS
from repro.faults.harness import FLOW_BASE, _fat_tree_hosts, _remap_scenario
from repro.net.topology import fat_tree

#: A couple of ECMP seeds so the remap is exercised on different hashed
#: paths, not just the seed-0 one.
SEEDS = (0, 7)


def _build(seed):
    return fat_tree(k=4, rate_bps=10e9, ecmp=True, ecmp_seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("preset", sorted(PRESETS))
class TestRemapCoverage:
    def test_no_dangling_targets(self, preset, seed):
        """Every remapped target resolves against the fat-tree."""
        net = _build(seed)
        scenario, worker_hosts = _remap_scenario(PRESETS[preset], net)
        for spec in scenario.faults:
            target = spec.target
            if target.startswith("worker:"):
                name = worker_hosts.get(spec.worker_rank)
                assert name in net.hosts, (preset, target)
                assert net.hosts[name].uplink is not None, (preset, target)
            elif spec.fault == "switch-down":
                name = target.split(":", 1)[1]
                assert name in net.switches, (preset, target)
            elif "->" in target:
                src, dst = target.split("->", 1)
                assert net.link_between(src, dst) is not None, (preset, target)
            else:
                switch, neighbor = target.split(":", 1)
                assert switch in net.switches, (preset, target)
                assert neighbor in net.switches[switch].ports, (preset, target)
            # No dumbbell name survives the rewrite.
            assert "s0" not in target and "s1" not in target, (preset, target)

    def test_injector_installs(self, preset, seed):
        """The injector — the real resolver — arms without errors."""
        net = _build(seed)
        scenario, worker_hosts = _remap_scenario(PRESETS[preset], net)
        FaultInjector(
            net, scenario, root_seed=seed, worker_hosts=worker_hosts
        ).install()


@pytest.mark.parametrize("seed", SEEDS)
def test_worker_ranks_map_to_pod0_senders(seed):
    net = _build(seed)
    for preset in sorted(PRESETS):
        _, worker_hosts = _remap_scenario(PRESETS[preset], net)
        pairs = min(PRESETS[preset].pairs, 4)
        assert sorted(worker_hosts) == list(range(pairs))
        for rank, name in worker_hosts.items():
            assert name == _fat_tree_hosts(rank)[0]
            assert name in net.hosts


@pytest.mark.parametrize("pair", range(4))
def test_pair_endpoints_cross_pods(pair):
    tx, rx = _fat_tree_hosts(pair)
    net = _build(0)
    assert tx in net.hosts and rx in net.hosts
    # pod 0 -> pod 1: the path always transits the shared fabric.
    path = net.flow_path(tx, rx, FLOW_BASE + pair)
    assert len(path) > 4
