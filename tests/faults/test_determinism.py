"""The determinism contract: same scenario + same seed ⇒ identical logs."""

import json

import pytest

from repro.faults import PRESETS, run_scenario
from repro.faults.cli import main, render_jsonl


class TestRunDeterminism:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_event_logs_are_byte_identical(self, preset):
        first = run_scenario(PRESETS[preset], transport="trimming", seed=11)
        second = run_scenario(PRESETS[preset], transport="trimming", seed=11)
        assert render_jsonl(first) == render_jsonl(second)

    def test_different_seed_changes_the_log(self):
        a = run_scenario(PRESETS["flaky-link"], transport="trimming", seed=1)
        b = run_scenario(PRESETS["flaky-link"], transport="trimming", seed=2)
        assert render_jsonl(a) != render_jsonl(b)

    def test_events_carry_sim_time_only(self):
        run = run_scenario(PRESETS["flaky-link"], transport="gbn", seed=5)
        for event in run.events:
            assert "t" in event
            assert "wall_time" not in event


class TestCli:
    def test_list_exits_clean(self):
        assert main(["list"]) == 0

    def test_run_writes_identical_files(self, tmp_path):
        out_a, out_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["run", "flaky-link", "--seed", "9", "--out", str(out_a)]) == 0
        assert main(["run", "flaky-link", "--seed", "9", "--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_output_is_valid_jsonl_with_summary(self, tmp_path):
        out = tmp_path / "log.jsonl"
        assert main(["run", "blackout-recovery", "--seed", "3", "--out", str(out)]) == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines, "empty log"
        assert all(rec["kind"] == "fault" for rec in lines[:-1])
        summary = lines[-1]
        assert summary["kind"] == "summary"
        assert summary["scenario"] == "blackout-recovery"
        assert summary["completed_flows"] == summary["flows"]
        assert "impairments" in summary

    def test_run_accepts_scenario_json_file(self, tmp_path):
        spec = {
            "name": "from-file",
            "description": "corruption burst defined in JSON",
            "faults": [
                {"fault": "corrupt", "target": "s0->s1", "rate": 0.5, "stop_s": 1e-4}
            ],
            "coords": 4000,
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        out = tmp_path / "log.jsonl"
        assert main(["run", str(path), "--seed", "1", "--out", str(out)]) == 0
        summary = json.loads(out.read_text().splitlines()[-1])
        assert summary["scenario"] == "from-file"
