"""The train loop under faults: degraded steps instead of hangs."""

import numpy as np
import pytest

from repro.core import RHTCodec, SubtractiveDitheringCodec
from repro.faults import FaultInjector, FaultSpec, Scenario
from repro.net import dumbbell
from repro.train import NetworkChannel, TrimChannel
from repro.transport.base import TransportSurrender


def gradient(n=4000, seed=0):
    return np.random.default_rng(seed).standard_normal(n).astype(np.float64)


def corrupting_factory():
    """A dumbbell that corrupts every data packet on the bottleneck —
    the receiver NACKs everything, retransmissions re-corrupt, and the
    sender must eventually surrender (never decode garbage)."""

    def factory():
        net = dumbbell(pairs=1)
        scenario = Scenario(
            name="wire-corruptor",
            description="every data packet corrupted",
            faults=(FaultSpec("corrupt", "s0->s1", rate=1.0),),
        )
        FaultInjector(net, scenario, root_seed=0).install()
        return net

    return factory


class TestNetworkChannelSurrender:
    def test_surrender_raises_without_degraded_step(self):
        channel = NetworkChannel(
            corrupting_factory(),
            RHTCodec(root_seed=1),
            src="tx0",
            dst="rx0",
            deadline_s=5.0,
            max_retries=8,
        )
        with pytest.raises(TransportSurrender, match="max_retries"):
            channel.transfer(gradient())

    def test_degraded_step_returns_zero_gradient(self):
        channel = NetworkChannel(
            corrupting_factory(),
            RHTCodec(root_seed=1),
            src="tx0",
            dst="rx0",
            deadline_s=5.0,
            degraded_step=True,
            max_retries=8,
        )
        x = gradient()
        out = channel.transfer(x)
        assert np.array_equal(out, np.zeros_like(x))
        assert channel.stats.rounds_surrendered == 1
        assert channel.stats.messages == 1

    def test_missed_deadline_degrades_too(self):
        channel = NetworkChannel(
            corrupting_factory(),
            RHTCodec(root_seed=1),
            src="tx0",
            dst="rx0",
            deadline_s=1e-6,  # nothing can complete this fast
            degraded_step=True,
        )
        out = channel.transfer(gradient())
        assert not out.any()
        assert channel.stats.rounds_surrendered == 1

    def test_healthy_path_is_unchanged(self):
        channel = NetworkChannel(
            lambda: dumbbell(pairs=1),
            RHTCodec(root_seed=1),
            src="tx0",
            dst="rx0",
            degraded_step=True,
        )
        x = gradient()
        out = channel.transfer(x)
        assert channel.stats.rounds_surrendered == 0
        assert np.square(out - x).mean() / np.square(x).mean() < 1e-6


class TestTrimChannelDrops:
    def test_drop_rate_zeroes_lost_coordinates(self):
        channel = TrimChannel(
            SubtractiveDitheringCodec(root_seed=3), trim_rate=0.0, drop_rate=0.5,
            seed=4,
        )
        x = gradient()
        out = channel.transfer(x)
        assert channel.stats.packets_dropped > 0
        assert channel.stats.rounds_surrendered == 0
        # Dropped packets arrive as zeros; survivors are near-exact.
        zero_coords = out == 0.0
        assert zero_coords.any()
        survivors = ~zero_coords
        assert np.allclose(out[survivors], x[survivors], atol=1e-6)

    def test_all_dropped_surrenders_the_round(self):
        channel = TrimChannel(
            SubtractiveDitheringCodec(root_seed=3), trim_rate=0.0, drop_rate=1.0
        )
        x = gradient()
        out = channel.transfer(x)
        assert np.array_equal(out, np.zeros_like(x))
        assert channel.stats.rounds_surrendered == 1
        assert channel.stats.packets_dropped == channel.stats.packets_total

    def test_drop_pattern_is_deterministic(self):
        def run():
            channel = TrimChannel(
                SubtractiveDitheringCodec(root_seed=3),
                trim_rate=0.2,
                drop_rate=0.3,
                seed=7,
            )
            return channel.transfer(gradient()), channel.stats.packets_dropped

        (out_a, drops_a), (out_b, drops_b) = run(), run()
        assert drops_a == drops_b
        assert np.array_equal(out_a, out_b)

    def test_drops_do_not_perturb_trim_pattern(self):
        """Adding drops must not change which packets get trimmed —
        the drop stream is independent (purpose='fault')."""
        base = TrimChannel(
            SubtractiveDitheringCodec(root_seed=3), trim_rate=0.4, seed=7
        )
        with_drops = TrimChannel(
            SubtractiveDitheringCodec(root_seed=3),
            trim_rate=0.4,
            drop_rate=0.0001,
            seed=7,
        )
        x = gradient()
        out_base = base.transfer(x)
        out_drops = with_drops.transfer(x)
        if with_drops.stats.packets_dropped == 0:
            assert np.array_equal(out_base, out_drops)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="drop_rate"):
            TrimChannel(SubtractiveDitheringCodec(), trim_rate=0.1, drop_rate=1.5)
