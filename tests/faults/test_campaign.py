"""Chaos-campaign orchestrator tests.

Fast layers (plan drawing, inventory, shrink mechanics against a stub
runner, serialization) run everywhere; the end-to-end cluster runs are
small (idle-1job) and double as the determinism regression for the
campaign JSONL artifact format.
"""

import json
from dataclasses import replace

import pytest

from repro.cluster import ClusterDriver, cluster_scenario_by_name
from repro.faults import FaultSpec
from repro.faults.campaign import (
    CAMPAIGN_KINDS,
    CampaignConfig,
    CampaignPlan,
    CampaignResult,
    Violation,
    draw_plan,
    fabric_inventory,
    render_campaign_jsonl,
    run_campaign,
    shrink_plan,
)
from repro.faults.cli import main as faults_main


class TestConfig:
    def test_round_trip(self):
        config = CampaignConfig(cluster="idle-1job", seed=9, faults=5)
        assert CampaignConfig.from_dict(config.to_dict()) == config

    def test_unknown_keys_rejected(self):
        data = CampaignConfig().to_dict()
        data["blast_radius"] = 11
        with pytest.raises(ValueError, match="unknown campaign config keys"):
            CampaignConfig.from_dict(data)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one fault"):
            CampaignConfig(faults=0)
        with pytest.raises(ValueError, match="subset"):
            CampaignConfig(kinds=("crash",))
        with pytest.raises(ValueError, match="subset"):
            CampaignConfig(kinds=())
        with pytest.raises(ValueError, match="down_min_s"):
            CampaignConfig(down_min_s=2e-3, down_max_s=1e-3)
        with pytest.raises(ValueError, match="rate_min"):
            CampaignConfig(rate_min=0.5, rate_max=0.1)


class TestInventory:
    def test_fat_tree_targets(self):
        net = ClusterDriver.build_network(
            cluster_scenario_by_name("idle-1job"), seed=0
        )
        inventory = fabric_inventory(net)
        assert inventory.links and inventory.ports and inventory.switches
        for label in inventory.links:
            src, dst = label.split("->")
            assert src in net.switches and dst in net.switches
        for label in inventory.ports:
            switch, neighbor = label.split(":")
            assert neighbor in net.switches[switch].ports
        # Device targets are aggregation/core tier only: killing one
        # must never strand a host behind a dead edge switch.
        for target in inventory.switches:
            switch = net.switches[target.split(":", 1)[1]]
            assert all(n in net.switches for n in switch.ports)

    def test_deterministic_ordering(self):
        net = ClusterDriver.build_network(
            cluster_scenario_by_name("idle-1job"), seed=0
        )
        assert fabric_inventory(net) == fabric_inventory(net)


class TestDrawPlan:
    def test_same_config_same_plan(self):
        config = CampaignConfig(cluster="idle-1job", seed=4, faults=6)
        assert draw_plan(config) == draw_plan(config)

    def test_different_seeds_differ(self):
        a = draw_plan(CampaignConfig(cluster="idle-1job", seed=4, faults=6))
        b = draw_plan(CampaignConfig(cluster="idle-1job", seed=5, faults=6))
        assert a.faults != b.faults

    def test_kind_pool_honored(self):
        config = CampaignConfig(
            cluster="idle-1job", seed=2, faults=8, kinds=("gray-failure", "blackout")
        )
        plan = draw_plan(config)
        assert len(plan.faults) == 8
        assert {spec.fault for spec in plan.faults} <= {"gray-failure", "blackout"}

    def test_plan_round_trips_through_json(self):
        plan = draw_plan(CampaignConfig(cluster="idle-1job", seed=7, faults=4))
        payload = json.loads(json.dumps(plan.to_dict()))
        assert CampaignPlan.from_dict(payload) == plan

    def test_every_kind_drawable(self):
        plan = draw_plan(
            CampaignConfig(cluster="idle-1job", seed=1, faults=40)
        )
        assert {spec.fault for spec in plan.faults} == set(CAMPAIGN_KINDS)


def _stub_result(plan, violations=()):
    return CampaignResult(
        plan=plan,
        report={},
        fault_events=[],
        fault_counts={},
        int_summary={},
        violations=tuple(violations),
        sim_time_s=0.0,
        steps=0,
    )


class TestShrink:
    CULPRIT = FaultSpec("flap", "s0->s1", start_s=0.0, down_s=1e-3)

    def _plan(self, n_noise=4):
        noise = tuple(
            FaultSpec("corrupt", f"s0->s{i + 2}", rate=0.1) for i in range(n_noise)
        )
        config = CampaignConfig(cluster="idle-1job", seed=0, faults=n_noise + 1)
        return CampaignPlan(config=config, faults=noise[:2] + (self.CULPRIT,) + noise[2:])

    def _stub_run(self, plan):
        violated = self.CULPRIT in plan.faults
        return _stub_result(
            plan,
            [Violation("no-livelock", "stub")] if violated else [],
        )

    def test_shrinks_to_the_culprit(self):
        plan = self._plan()
        shrunk = shrink_plan(plan, "no-livelock", run=self._stub_run)
        assert shrunk.faults == (self.CULPRIT,)

    def test_trace_records_candidates(self):
        trace = []
        shrink_plan(self._plan(), "no-livelock", run=self._stub_run, trace=trace)
        assert trace
        assert {step["still_failing"] for step in trace} == {True, False}
        assert all(step["kept"] >= 1 for step in trace)

    def test_rejects_plan_that_does_not_fail(self):
        plan = self._plan()
        healthy = replace(plan, faults=plan.faults[:2])
        with pytest.raises(ValueError, match="nothing to shrink"):
            shrink_plan(healthy, "no-livelock", run=self._stub_run)

    def test_shrink_is_deterministic(self):
        plan = self._plan(n_noise=6)
        a = shrink_plan(plan, "no-livelock", run=self._stub_run)
        b = shrink_plan(plan, "no-livelock", run=self._stub_run)
        assert a == b


class TestRunCampaign:
    def test_invariants_hold_on_small_cluster(self):
        plan = draw_plan(CampaignConfig(cluster="idle-1job", seed=3, faults=3))
        result = run_campaign(plan)
        assert result.ok, [v.to_dict() for v in result.violations]
        assert result.summary()["fault_counts"]

    def test_same_plan_byte_identical_artifacts(self):
        plan = draw_plan(CampaignConfig(cluster="idle-1job", seed=11, faults=3))
        first = "\n".join(render_campaign_jsonl(run_campaign(plan)))
        second = "\n".join(render_campaign_jsonl(run_campaign(plan)))
        assert first == second

    def test_determinism_monitor_runs_twice_clean(self):
        plan = draw_plan(
            CampaignConfig(
                cluster="idle-1job", seed=2, faults=2, check_determinism=True
            )
        )
        result = run_campaign(plan)
        assert "determinism" not in result.violated_monitors


class TestCampaignCLI:
    def test_run_then_replay_byte_identical(self, tmp_path):
        out = tmp_path / "campaign"
        code = faults_main(
            [
                "campaign",
                "run",
                "--cluster",
                "idle-1job",
                "--seed",
                "6",
                "--faults",
                "2",
                "--out-dir",
                str(out),
            ]
        )
        assert code == 0
        plan_path = out / "plan.json"
        log_path = out / "campaign.jsonl"
        assert plan_path.exists() and log_path.exists()
        replay_path = tmp_path / "replay.jsonl"
        code = faults_main(
            ["campaign", "replay", "--plan", str(plan_path), "--out", str(replay_path)]
        )
        assert code == 0
        assert replay_path.read_bytes() == log_path.read_bytes()

    def test_shrink_on_healthy_plan_is_a_noop(self, tmp_path):
        out = tmp_path / "campaign"
        faults_main(
            [
                "campaign",
                "run",
                "--cluster",
                "idle-1job",
                "--seed",
                "6",
                "--faults",
                "2",
                "--out-dir",
                str(out),
            ]
        )
        code = faults_main(
            [
                "campaign",
                "shrink",
                "--plan",
                str(out / "plan.json"),
                "--out-dir",
                str(tmp_path / "shrunk"),
            ]
        )
        assert code == 0
        assert not (tmp_path / "shrunk" / "shrunk.json").exists()
