"""Unit tests for the declarative scenario format and presets."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    PRESETS,
    FaultSpec,
    Scenario,
    available_scenarios,
    scenario_by_name,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultSpec("bitrot", "s0->s1", rate=0.1)

    def test_per_packet_kinds_need_rate(self):
        for kind in ("corrupt", "ack-loss", "duplicate", "reorder"):
            with pytest.raises(ValueError, match="rate"):
                FaultSpec(kind, "s0->s1")

    def test_flap_needs_downtime(self):
        with pytest.raises(ValueError, match="down_s"):
            FaultSpec("flap", "s0->s1")

    def test_blackout_target_shape(self):
        with pytest.raises(ValueError, match="<switch>:<neighbor>"):
            FaultSpec("blackout", "s0->s1", down_s=1e-3)
        with pytest.raises(ValueError, match="src->dst"):
            FaultSpec("corrupt", "s0:s1", rate=0.1)

    def test_port_flap_target_shape(self):
        with pytest.raises(ValueError, match="<switch>:<neighbor>"):
            FaultSpec("port-flap", "s0->s1", down_s=1e-3)
        with pytest.raises(ValueError, match="down_s"):
            FaultSpec("port-flap", "s0:s1")

    def test_switch_down_target_shape(self):
        with pytest.raises(ValueError, match="switch:<name>"):
            FaultSpec("switch-down", "s0", down_s=1e-3)
        with pytest.raises(ValueError, match="switch:<name>"):
            FaultSpec("switch-down", "switch:", down_s=1e-3)
        with pytest.raises(ValueError, match="down_s"):
            FaultSpec("switch-down", "switch:s0")
        FaultSpec("switch-down", "switch:s0", down_s=1e-3)  # valid

    def test_gray_failure_validation(self):
        with pytest.raises(ValueError, match="no-op"):
            FaultSpec("gray-failure", "s0->s1")
        with pytest.raises(ValueError, match="corrupt_rate"):
            FaultSpec("gray-failure", "s0->s1", rate=0.1, corrupt_rate=1.5)
        with pytest.raises(ValueError, match="src->dst"):
            FaultSpec("gray-failure", "s0:s1", rate=0.1)
        # rate=1.0 silent loss with no corruption is a legal gray hole.
        FaultSpec("gray-failure", "s0->s1", rate=1.0)
        FaultSpec("gray-failure", "s0->s1", corrupt_rate=0.2)

    def test_corrupt_rate_is_gray_only(self):
        with pytest.raises(ValueError, match="corrupt_rate only applies"):
            FaultSpec("corrupt", "s0->s1", rate=0.1, corrupt_rate=0.1)

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            FaultSpec("corrupt", "s0->s1", rate=0.1, start_s=2.0, stop_s=1.0)

    def test_period_must_exceed_downtime(self):
        with pytest.raises(ValueError, match="period_s"):
            FaultSpec("flap", "s0->s1", down_s=2e-3, period_s=1e-3)

    def test_active_window(self):
        spec = FaultSpec("corrupt", "s0->s1", rate=0.5, start_s=1.0, stop_s=2.0)
        assert not spec.active_at(0.5)
        assert spec.active_at(1.0)
        assert spec.active_at(1.999)
        assert not spec.active_at(2.0)

    def test_open_ended_window(self):
        spec = FaultSpec("corrupt", "s0->s1", rate=0.5)
        assert spec.active_at(0.0)
        assert spec.active_at(1e9)


class TestScenario:
    def test_needs_faults(self):
        with pytest.raises(ValueError, match="at least one fault"):
            Scenario(name="empty", description="", faults=())

    def test_dict_round_trip(self):
        scenario = PRESETS["flaky-link"]
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_from_dict_rejects_unknown_keys(self):
        data = PRESETS["flaky-link"].to_dict()
        data["chaos_level"] = 11
        with pytest.raises(ValueError, match="unknown scenario keys"):
            Scenario.from_dict(data)

    def test_from_dict_builds_specs_from_plain_dicts(self):
        scenario = Scenario.from_dict(
            {
                "name": "adhoc",
                "description": "one corrupt stream",
                "faults": [{"fault": "corrupt", "target": "s0->s1", "rate": 0.5}],
            }
        )
        assert scenario.faults[0] == FaultSpec("corrupt", "s0->s1", rate=0.5)


class TestPresets:
    def test_eleven_presets(self):
        assert len(PRESETS) == 11
        assert available_scenarios() == sorted(PRESETS)

    def test_expected_names(self):
        assert set(PRESETS) == {
            "flaky-link",
            "incast-plus-corruption",
            "ack-storm-loss",
            "reorder-heavy",
            "flap-during-allreduce",
            "blackout-recovery",
            "worker-crash",
            "straggler-storm",
            "core-switch-down",
            "gray-core-leak",
            "port-flap-storm",
        }

    def test_every_kind_is_covered(self):
        used = {spec.fault for s in PRESETS.values() for spec in s.faults}
        assert used == set(FAULT_KINDS)

    def test_worker_scoped_validation(self):
        with pytest.raises(ValueError, match="worker:<rank>"):
            FaultSpec("crash", "s0->s1")
        with pytest.raises(ValueError, match="rank must be an integer"):
            FaultSpec("crash", "worker:one")
        with pytest.raises(ValueError, match="jitter_s"):
            FaultSpec("straggler", "worker:1", rate=0.5)
        with pytest.raises(ValueError, match="slow_factor"):
            FaultSpec("straggler", "worker:1", rate=0.5, jitter_s=1e-6, slow_factor=0.5)
        spec = FaultSpec("straggler", "worker:3", rate=0.5, jitter_s=1e-6)
        assert spec.worker_rank == 3
        with pytest.raises(ValueError, match="not worker-scoped"):
            _ = FaultSpec("corrupt", "s0->s1", rate=0.1).worker_rank

    def test_worker_faults_accessor(self):
        assert PRESETS["flaky-link"].worker_faults() == ()
        crash = PRESETS["worker-crash"]
        assert [spec.fault for spec in crash.worker_faults()] == ["crash"]
        storm = PRESETS["straggler-storm"]
        assert [spec.worker_rank for spec in storm.worker_faults()] == [1, 2]

    def test_lookup(self):
        assert scenario_by_name("reorder-heavy").name == "reorder-heavy"
        with pytest.raises(KeyError, match="available"):
            scenario_by_name("nope")
