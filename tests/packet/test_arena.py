"""Tests for the packet arena: lifecycle, ownership kinds, and the
arena-on/off byte-identity guarantee.

The arena is an optimization that must be invisible: every test here
either pins the ownership protocol (double release raises, message-kind
refuses sink release, twins start un-pooled) or proves that a full
simulation run produces identical results with pooling on and off.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RHTCodec, decode_packets, packetize
from repro.net import dumbbell
from repro.packet import Packet
from repro.packet.arena import (
    KIND_MESSAGE,
    KIND_TRANSIENT,
    PacketArena,
    arena_enabled,
    get_arena,
    set_arena,
    set_arena_enabled,
)
from repro.transport import (
    AIMD,
    FixedWindow,
    GoBackNReceiver,
    GoBackNSender,
    TrimmingReceiver,
    TrimmingSender,
    segment_bytes,
)

#: Packet fields that legitimately differ between two construction paths
#: (fresh ids) or are pool bookkeeping rather than wire state.
_NON_WIRE_FIELDS = {"packet_id", "_pool", "_pool_kind", "_pool_free"}


@pytest.fixture
def fresh_arena():
    """A private enabled arena installed as the default, restored after."""
    arena = PacketArena(capacity=64)
    previous = set_arena(arena)
    was_enabled = set_arena_enabled(True)
    try:
        yield arena
    finally:
        set_arena(previous)
        set_arena_enabled(was_enabled)


class TestLifecycle:
    def test_acquire_release_reuses_the_object(self, fresh_arena):
        first = fresh_arena.acquire(src="a", dst="b", payload=b"x")
        assert fresh_arena.release_transient(first)
        second = fresh_arena.acquire(src="c", dst="d", payload=b"yy")
        assert second is first  # recycled, not reallocated
        assert second.src == "c" and second.payload == b"yy"
        assert fresh_arena.reused == 1

    def test_recycled_packet_draws_a_fresh_id(self, fresh_arena):
        first = fresh_arena.acquire(src="a", dst="b")
        stale_id = first.packet_id
        fresh_arena.release_transient(first)
        second = fresh_arena.acquire(src="a", dst="b")
        assert second.packet_id > stale_id

    def test_double_release_raises(self, fresh_arena):
        packet = fresh_arena.acquire(src="a", dst="b")
        fresh_arena.release(packet)
        with pytest.raises(RuntimeError, match="released twice"):
            fresh_arena.release(packet)

    def test_unpooled_packet_release_is_ignored(self, fresh_arena):
        assert not fresh_arena.release(Packet(src="a", dst="b"))
        assert not fresh_arena.release_transient(Packet(src="a", dst="b"))

    def test_release_transient_refuses_message_kind(self, fresh_arena):
        retained = fresh_arena.acquire(KIND_MESSAGE, src="a", dst="b", payload=b"data")
        assert not fresh_arena.release_transient(retained)
        assert retained.payload == b"data"  # sender's copy untouched
        # The transfer owner still can release it.
        assert fresh_arena.release_all([retained]) == 1

    def test_release_all_dedups_overlapping_lists(self, fresh_arena):
        packets = [fresh_arena.acquire(KIND_MESSAGE, src="a", dst="b") for _ in range(3)]
        # Wire list and retransmit list overlap (plus an un-pooled twin).
        wire = packets + [packets[0], None, Packet(src="a", dst="b")]
        assert fresh_arena.release_all(wire) == 3
        assert fresh_arena.release_all(packets) == 0  # already recycled

    def test_capacity_overflow_falls_back_to_gc(self):
        arena = PacketArena(capacity=1)
        previous, was_enabled = set_arena(arena), set_arena_enabled(True)
        try:
            a = arena.acquire(src="a", dst="b")
            b = arena.acquire(src="a", dst="b")
            arena.release(a)
            arena.release(b)
            assert len(arena) == 1
            assert arena.dropped == 1
            assert b._pool is None  # detached for the GC, not leaked
        finally:
            set_arena(previous)
            set_arena_enabled(was_enabled)

    def test_debug_arena_poisons_released_packets(self):
        arena = PacketArena(debug=True)
        previous, was_enabled = set_arena(arena), set_arena_enabled(True)
        try:
            packet = arena.acquire(src="a", dst="b", payload=b"secret")
            arena.release(packet)
            # Use-after-release now reads unmistakable garbage.
            assert packet.payload == b""
            assert packet.src == "<released>"
            assert packet.wire_size == 0
        finally:
            set_arena(previous)
            set_arena_enabled(was_enabled)

    def test_disabled_arena_never_pools(self, fresh_arena):
        set_arena_enabled(False)
        packet = fresh_arena.acquire(src="a", dst="b")
        assert packet._pool is None
        assert not fresh_arena.release_transient(packet)
        filler = fresh_arena.acquire_filler("a", "b", b"x", 7)
        assert filler._pool is None


class TestTwinIndependence:
    """replace() twins (trim remnants, clones) must never alias the pool."""

    def _gradient_packet(self, arena):
        from repro.packet import GradientHeader, pack_bits

        header = GradientHeader(
            codec_id=1, head_bits=1, tail_bits=31, message_id=1, epoch=0,
            chunk_index=1, coord_offset=0, coord_count=100, seed=0, flags=0,
        )
        rng = np.random.default_rng(0)
        heads = rng.integers(0, 2, 100).astype(np.uint32)
        tails = rng.integers(0, 2**31, 100).astype(np.uint32)
        payload = header.to_bytes() + pack_bits(heads, 1) + pack_bits(tails, 31)
        return arena.acquire(
            KIND_MESSAGE, src="a", dst="b", payload=payload, grad_header=header
        )

    def test_trim_twin_starts_unpooled(self, fresh_arena):
        original = self._gradient_packet(fresh_arena)
        twin = original.trim()
        assert original._pool is fresh_arena
        assert twin._pool is None

    def test_clone_starts_unpooled(self, fresh_arena):
        original = self._gradient_packet(fresh_arena)
        assert original.clone()._pool is None

    def test_twin_survives_original_recycling(self, fresh_arena):
        original = self._gradient_packet(fresh_arena)
        twin = original.trim()
        remnant = bytes(twin.payload)
        fresh_arena.release_all([original])
        recycled = fresh_arena.acquire(src="x", dst="y", payload=b"\xff" * 64)
        assert recycled is original  # the object was recycled...
        assert bytes(twin.payload) == remnant  # ...but the twin kept its bytes
        assert not fresh_arena.release_transient(twin)  # and owns no pool slot


class TestAcquireFillerEquivalence:
    """acquire_filler's slot-assignment fast path must be field-for-field
    identical to plain keyword construction."""

    @settings(max_examples=50, deadline=None)
    @given(
        src=st.text(min_size=1, max_size=12),
        dst=st.text(min_size=1, max_size=12),
        payload=st.binary(max_size=256),
        flow_id=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_recycled_filler_matches_plain_construction(
        self, src, dst, payload, flow_id
    ):
        arena = PacketArena()
        previous, was_enabled = set_arena(arena), set_arena_enabled(True)
        try:
            # Dirty a packet with maximally non-default state, recycle it,
            # and demand the filler path scrubs every field.
            dirty = arena.acquire(
                src="zzz", dst="zzz", payload=b"\xee" * 99, priority=2,
                flow_id=12345, seq=9, seq_total=9, is_ack=True, nack=True,
                pull=True, trimmed_echo=True, ecn=True, created_at=4.5,
                trimmed_from=1000, checksum=1,
            )
            arena.release_transient(dirty)
            recycled = arena.acquire_filler(src, dst, payload, flow_id)
            assert recycled is dirty
            reference = Packet(src=src, dst=dst, payload=payload, flow_id=flow_id)
            for f in dataclasses.fields(Packet):
                if f.name in _NON_WIRE_FIELDS:
                    continue
                assert getattr(recycled, f.name) == getattr(reference, f.name), f.name
            # Fresh ids from the same stream, in draw order.
            assert recycled.packet_id == reference.packet_id - 1
            assert recycled._pool is arena
            assert recycled._pool_kind == KIND_TRANSIENT
            assert not recycled._pool_free
        finally:
            set_arena(previous)
            set_arena_enabled(was_enabled)


class _ABRun:
    """One deterministic dumbbell run; everything identity-relevant."""

    def __init__(self, drop, trim, seed):
        net = dumbbell(pairs=1)
        net.set_impairment("s0", "s1", drop_prob=drop, trim_prob=trim)
        net.link_between("s0", "s1")._rng = np.random.default_rng(seed)
        net.link_between("s1", "s0")._rng = np.random.default_rng(seed + 1)
        self.trace = []

        codec = RHTCodec(root_seed=seed % 1000, row_size=2048)
        x = np.random.default_rng(seed).standard_normal(4000)
        trim_messages = []
        trim_sender = TrimmingSender(net.hosts["tx0"], flow_id=2, cc=FixedWindow(32))
        TrimmingReceiver(
            net.hosts["rx0"], flow_id=2,
            on_message=lambda pkts: trim_messages.append((net.sim.now, pkts)),
        )
        trim_sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=2))

        gbn_messages = []
        gbn_sender = GoBackNSender(
            net.hosts["tx0"], flow_id=1, cc=AIMD(initial_window=8), rto_min=1e-4
        )
        GoBackNReceiver(
            net.hosts["rx0"], flow_id=1,
            on_message=lambda pkts: gbn_messages.append((net.sim.now, pkts)),
        )
        gbn_sender.send_message(segment_bytes("tx0", "rx0", 30_000, flow_id=1))

        net.sim.run(until=30.0)
        assert trim_sender.done and gbn_sender.done
        for when, pkts in trim_messages + gbn_messages:
            for p in pkts:
                self.trace.append(
                    (when, p.flow_id, p.seq, p.is_trimmed, p.wire_size,
                     bytes(p.payload))
                )
        self.decoded = decode_packets(trim_messages[0][1], codec)
        self.events = net.sim.events_processed
        self.finished_at = net.sim.now


class TestArenaByteIdentity:
    """Same seed, pooling on vs off: identical deliveries, payload bytes,
    decode output, and event count — under drop, trim, and the delivery
    reordering retransmission causes."""

    @settings(
        max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        drop=st.floats(min_value=0.0, max_value=0.1),
        trim=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_pooling_is_invisible(self, drop, trim, seed):
        runs = {}
        for enabled in (True, False):
            previous = set_arena(PacketArena())
            was_enabled = set_arena_enabled(enabled)
            try:
                runs[enabled] = _ABRun(drop, trim, seed)
            finally:
                set_arena(previous)
                set_arena_enabled(was_enabled)
        on, off = runs[True], runs[False]
        assert on.trace == off.trace
        assert on.events == off.events
        assert on.finished_at == off.finished_at
        np.testing.assert_array_equal(on.decoded, off.decoded)


def test_module_default_arena_is_shared():
    assert get_arena() is get_arena()
    assert isinstance(arena_enabled(), bool)
