"""Property-based tests for the bit-packing wire format.

Hypothesis sweeps every head width 1–32 and ragged coordinate counts,
checking the algebraic contracts the packetizer relies on: pack/unpack
round-trips losslessly, the byte budget matches ``packed_size``, and
sign packing is an involution.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet import pack_bits, pack_signs, packed_size, unpack_bits, unpack_signs


@st.composite
def values_with_width(draw):
    """(values, bits): arbitrary width, ragged count, in-range values."""
    bits = draw(st.integers(min_value=1, max_value=32))
    count = draw(st.integers(min_value=0, max_value=300))
    top = (1 << bits) - 1
    values = draw(
        st.lists(st.integers(min_value=0, max_value=top), min_size=count, max_size=count)
    )
    return np.array(values, dtype=np.uint32), bits


class TestPackBitsProperties:
    @given(values_with_width())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_any_width_any_count(self, case):
        values, bits = case
        packed = pack_bits(values, bits)
        assert np.array_equal(unpack_bits(packed, values.size, bits), values)

    @given(values_with_width())
    @settings(max_examples=200, deadline=None)
    def test_packed_length_matches_budget(self, case):
        values, bits = case
        assert len(pack_bits(values, bits)) == packed_size(values.size, bits)

    @given(values_with_width(), st.integers(min_value=0, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_trailing_padding_is_ignored(self, case, extra_bytes):
        """Unpacking tolerates (and ignores) surplus trailing bytes —
        what a trimmed packet's byte-aligned payload looks like."""
        values, bits = case
        packed = pack_bits(values, bits) + b"\xff" * extra_bytes
        assert np.array_equal(unpack_bits(packed, values.size, bits), values)

    @given(values_with_width())
    @settings(max_examples=100, deadline=None)
    def test_unpack_is_pure(self, case):
        values, bits = case
        packed = pack_bits(values, bits)
        first = unpack_bits(packed, values.size, bits)
        second = unpack_bits(packed, values.size, bits)
        assert np.array_equal(first, second)


class TestPackSignsProperties:
    @given(st.lists(st.sampled_from([-1.0, 1.0]), max_size=500))
    @settings(max_examples=200, deadline=None)
    def test_involution(self, entries):
        """pack -> unpack returns the exact ±1 vector that went in."""
        signs = np.array(entries, dtype=np.float64)
        assert np.array_equal(unpack_signs(pack_signs(signs), signs.size), signs)

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=500))
    @settings(max_examples=100, deadline=None)
    def test_agrees_with_one_bit_pack(self, bits):
        signs = np.array(bits, dtype=np.uint32)
        assert pack_signs(signs) == pack_bits(signs, 1)

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=500))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_bit_pattern(self, bits):
        """The wire bit for entry i survives a pack/unpack cycle."""
        signs = np.array(bits, dtype=np.uint32)
        recovered = unpack_signs(pack_signs(signs), signs.size)
        assert np.array_equal(recovered > 0, signs == 1)
