"""Tests for trim policies, including multi-level trimming."""

import numpy as np
import pytest

from repro.packet import (
    GRADIENT_HEADER_BYTES,
    GradientHeader,
    MultiLevelTrim,
    NeverTrim,
    Packet,
    SingleLevelTrim,
    pack_bits,
    trim_to_bits,
)


def plane_packet(coord_count=50):
    """A 3-plane (1/7/24-bit) tiered packet as the multilevel codec emits."""
    header = GradientHeader(
        codec_id=5,
        head_bits=1,
        tail_bits=31,
        message_id=1,
        epoch=0,
        chunk_index=1,
        coord_offset=0,
        coord_count=coord_count,
        seed=0,
    )
    rng = np.random.default_rng(1)
    signs = rng.integers(0, 2, coord_count).astype(np.uint32)
    mags = rng.integers(0, 128, coord_count).astype(np.uint32)
    residuals = rng.integers(0, 2**24, coord_count).astype(np.uint32)
    payload = (
        header.to_bytes()
        + pack_bits(signs, 1)
        + pack_bits(mags, 7)
        + pack_bits(residuals, 24)
    )
    return Packet(src="a", dst="b", payload=payload, grad_header=header)


class TestNeverTrim:
    def test_always_drops(self):
        policy = NeverTrim()
        decision = policy.decide(plane_packet(), queue_fill=1.0)
        assert decision.action == "drop"
        assert policy.apply(plane_packet(), decision) is None


class TestSingleLevelTrim:
    def test_trims_gradient_packets(self):
        policy = SingleLevelTrim()
        pkt = plane_packet()
        decision = policy.decide(pkt, queue_fill=0.99)
        assert decision.action == "trim"
        out = policy.apply(pkt, decision)
        assert out is not None and out.is_trimmed

    def test_drops_untrimmable_packets(self):
        policy = SingleLevelTrim()
        pkt = Packet(src="a", dst="b", payload=b"x" * 500)
        assert policy.decide(pkt, queue_fill=0.99).action == "drop"


class TestMultiLevelTrim:
    def test_level_selection_by_fill(self):
        policy = MultiLevelTrim(level_bits=[8, 1], thresholds=[0.7, 0.9])
        pkt = plane_packet()
        assert policy.decide(pkt, queue_fill=0.75).level == 0  # keep 8 bits
        assert policy.decide(pkt, queue_fill=0.95).level == 1  # keep 1 bit

    def test_below_threshold_overflow_uses_shallowest(self):
        policy = MultiLevelTrim(level_bits=[8, 1], thresholds=[0.7, 0.9])
        assert policy.decide(plane_packet(), queue_fill=0.1).level == 0

    def test_apply_produces_expected_sizes(self):
        policy = MultiLevelTrim(level_bits=[8, 1], thresholds=[0.7, 0.9])
        pkt = plane_packet(coord_count=50)
        keep8 = policy.apply(pkt, policy.decide(pkt, 0.75))
        keep1 = policy.apply(pkt, policy.decide(pkt, 0.95))
        # 50 coords: sign plane 7 B, magnitude plane 44 B, residual 150 B.
        assert len(keep8.payload) == GRADIENT_HEADER_BYTES + 7 + 44
        assert len(keep1.payload) == GRADIENT_HEADER_BYTES + 7
        assert keep8.grad_header.head_bits == 8
        assert keep1.grad_header.head_bits == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="same length"):
            MultiLevelTrim(level_bits=[8], thresholds=[0.5, 0.9])
        with pytest.raises(ValueError, match="non-decreasing"):
            MultiLevelTrim(level_bits=[8, 1], thresholds=[0.9, 0.5])
        with pytest.raises(ValueError, match="non-increasing"):
            MultiLevelTrim(level_bits=[1, 8], thresholds=[0.5, 0.9])


class TestTrimToBits:
    def test_keep_bits_must_hit_plane_boundary(self):
        with pytest.raises(ValueError, match="prefix-plane boundary"):
            trim_to_bits(plane_packet(), keep_bits=5)

    def test_keep_all_bits_is_identity(self):
        pkt = plane_packet()
        assert trim_to_bits(pkt, keep_bits=32).payload == pkt.payload

    def test_requires_gradient_packet(self):
        with pytest.raises(ValueError, match="not a gradient"):
            trim_to_bits(Packet(src="a", dst="b", payload=b"zz"), 1)

    def test_cannot_keep_more_than_total(self):
        with pytest.raises(ValueError, match="cannot keep"):
            trim_to_bits(plane_packet(), keep_bits=40)

    def test_sealed_packet_is_resealed(self):
        """A multi-level trim must re-seal, like Packet.trim — a stale
        checksum would read as in-flight corruption at the receiver."""
        pkt = plane_packet()
        pkt.seal()
        trimmed = trim_to_bits(pkt, keep_bits=8)
        assert trimmed.checksum is not None
        assert trimmed.verify()

    def test_unsealed_packet_stays_unsealed(self):
        trimmed = trim_to_bits(plane_packet(), keep_bits=8)
        assert trimmed.checksum is None

    def test_two_plane_default_head_trim(self):
        """trim_to_bits with (P, Q) planes matches Packet.trim for P=1."""
        from tests.packet.test_packet import gradient_packet

        pkt = gradient_packet(coord_count=100)
        via_policy = trim_to_bits(pkt, keep_bits=1, plane_bits=(1, 31))
        via_packet = pkt.trim()
        assert via_policy.payload[GRADIENT_HEADER_BYTES:] == via_packet.payload[
            GRADIENT_HEADER_BYTES:
        ]
