"""Tests for bit-level packing of P-bit heads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet import pack_bits, pack_signs, packed_size, unpack_bits, unpack_signs


class TestPackedSize:
    def test_one_bit(self):
        assert packed_size(0, 1) == 0
        assert packed_size(1, 1) == 1
        assert packed_size(8, 1) == 1
        assert packed_size(9, 1) == 2
        assert packed_size(365, 1) == 46

    def test_multi_bit(self):
        assert packed_size(3, 7) == 3  # 21 bits -> 3 bytes
        assert packed_size(4, 31) == 16  # 124 bits -> 16 bytes
        assert packed_size(2, 32) == 8

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            packed_size(1, 0)
        with pytest.raises(ValueError):
            packed_size(1, 33)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            packed_size(-1, 8)


class TestPackUnpack:
    def test_round_trip_small(self):
        values = np.array([0, 1, 1, 0, 1], dtype=np.uint32)
        assert np.array_equal(unpack_bits(pack_bits(values, 1), 5, 1), values)

    def test_round_trip_31_bits(self):
        values = np.array([0, 1, 2**31 - 1, 12345678], dtype=np.uint32)
        assert np.array_equal(unpack_bits(pack_bits(values, 31), 4, 31), values)

    def test_msb_first_layout(self):
        # Value 1 in a 1-bit code lands in the MSB of the first byte.
        assert pack_bits(np.array([1]), 1) == b"\x80"
        assert pack_bits(np.array([1, 1, 0, 0, 0, 0, 0, 1]), 1) == b"\xc1"

    def test_empty_input(self):
        assert pack_bits(np.zeros(0, dtype=np.uint32), 5) == b""
        assert unpack_bits(b"", 0, 5).size == 0

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            pack_bits(np.array([4]), 2)

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError, match="need"):
            unpack_bits(b"\x00", 9, 1)

    def test_extra_buffer_ignored(self):
        values = np.array([3, 1], dtype=np.uint32)
        data = pack_bits(values, 2) + b"junk"
        assert np.array_equal(unpack_bits(data, 2, 2), values)


class TestSigns:
    def test_round_trip(self):
        signs = np.array([1.0, -1.0, -1.0, 1.0, 1.0])
        assert np.array_equal(unpack_signs(pack_signs(signs), 5), signs)

    def test_zero_maps_to_minus_one(self):
        # pack_signs treats only strictly-positive values as +1.
        assert np.array_equal(unpack_signs(pack_signs(np.array([0.0])), 1), [-1.0])

    def test_boolean_input(self):
        signs = unpack_signs(pack_signs(np.array([True, False, True])), 3)
        assert np.array_equal(signs, [1.0, -1.0, 1.0])


@settings(max_examples=60)
@given(
    bits=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=0, max_value=300),
)
def test_pack_unpack_round_trip_property(bits, seed, count):
    """pack_bits/unpack_bits is lossless for every width in [1, 32]."""
    rng = np.random.default_rng(seed)
    high = (1 << bits) - 1
    values = rng.integers(0, high + 1, size=count, dtype=np.uint64).astype(np.uint32)
    packed = pack_bits(values, bits)
    assert len(packed) == packed_size(count, bits)
    assert np.array_equal(unpack_bits(packed, count, bits), values)
