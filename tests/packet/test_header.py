"""Tests for the self-describing gradient header."""

import pytest

from repro.packet import (
    FLAG_METADATA,
    FLAG_TRIMMED,
    GRADIENT_HEADER_BYTES,
    WIRE_HEADER_BYTES,
    GradientHeader,
)


def make_header(**overrides):
    fields = dict(
        codec_id=4,
        head_bits=1,
        tail_bits=31,
        message_id=1234,
        epoch=7,
        chunk_index=3,
        coord_offset=1095,
        coord_count=365,
        seed=0xDEADBEEFCAFE,
    )
    fields.update(overrides)
    return GradientHeader(**fields)


class TestWireConstants:
    def test_standard_header_is_42_bytes(self):
        """The paper's Section 2 arithmetic: Ethernet + IP + UDP = 42 B."""
        assert WIRE_HEADER_BYTES == 42

    def test_gradient_header_is_32_bytes(self):
        assert GRADIENT_HEADER_BYTES == 32


class TestSerialization:
    def test_round_trip(self):
        header = make_header()
        assert GradientHeader.from_bytes(header.to_bytes()) == header

    def test_round_trip_with_flags(self):
        header = make_header(flags=FLAG_TRIMMED | FLAG_METADATA)
        parsed = GradientHeader.from_bytes(header.to_bytes())
        assert parsed.trimmed
        assert parsed.is_metadata

    def test_serialized_length(self):
        assert len(make_header().to_bytes()) == GRADIENT_HEADER_BYTES

    def test_bad_magic_rejected(self):
        data = bytearray(make_header().to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(ValueError, match="bad magic"):
            GradientHeader.from_bytes(bytes(data))

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError, match="needs"):
            GradientHeader.from_bytes(b"\x00" * 10)

    def test_extra_bytes_ignored(self):
        header = make_header()
        assert GradientHeader.from_bytes(header.to_bytes() + b"payload") == header

    def test_large_seed_round_trips(self):
        header = make_header(seed=2**63 - 1)
        assert GradientHeader.from_bytes(header.to_bytes()).seed == 2**63 - 1


class TestFlags:
    def test_defaults(self):
        header = make_header()
        assert not header.trimmed
        assert not header.is_metadata

    def test_with_flags_is_additive(self):
        header = make_header(flags=FLAG_METADATA).with_flags(FLAG_TRIMMED)
        assert header.trimmed
        assert header.is_metadata

    def test_with_flags_returns_new_object(self):
        header = make_header()
        trimmed = header.with_flags(FLAG_TRIMMED)
        assert not header.trimmed
        assert trimmed.trimmed
