"""Fast-path vs. reference equivalence for the vectorized bit packing.

The PR-4 fast paths (``np.packbits`` / big-endian views / byte-domain
generic kernel) must be *byte-identical* to the original per-bit
expansion implementation, which is kept in the module as
``_pack_bits_generic`` / ``_unpack_bits_generic`` precisely so these
tests can compare against it.  Hypothesis sweeps every width 1–32,
including each dedicated fast width, plus the whole-message
``pack_segments`` / ``unpack_batch`` layer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet import (
    pack_bits,
    pack_segments,
    packed_size,
    unpack_batch,
    unpack_bits,
)
from repro.packet.bitpack import (
    FAST_WIDTHS,
    _pack_bits_generic,
    _unpack_bits_generic,
)


@st.composite
def values_with_width(draw, widths=st.integers(min_value=1, max_value=32)):
    """(values, bits): arbitrary width with in-range values."""
    bits = draw(widths)
    count = draw(st.integers(min_value=0, max_value=300))
    top = (1 << bits) - 1
    values = draw(
        st.lists(st.integers(min_value=0, max_value=top), min_size=count, max_size=count)
    )
    return np.array(values, dtype=np.uint32), bits


class TestFastPathMatchesReference:
    @given(values_with_width())
    @settings(max_examples=300, deadline=None)
    def test_pack_bits_byte_identical(self, case):
        values, bits = case
        assert pack_bits(values, bits) == _pack_bits_generic(values, bits)

    @given(values_with_width())
    @settings(max_examples=300, deadline=None)
    def test_unpack_bits_matches_reference(self, case):
        values, bits = case
        packed = _pack_bits_generic(values, bits)
        fast = unpack_bits(packed, values.size, bits)
        reference = _unpack_bits_generic(packed, values.size, bits)
        assert np.array_equal(fast, reference)
        assert fast.dtype == reference.dtype == np.uint32

    @given(values_with_width(widths=st.sampled_from(FAST_WIDTHS)))
    @settings(max_examples=200, deadline=None)
    def test_dedicated_widths_round_trip_through_either_path(self, case):
        """Mix-and-match: fast pack -> reference unpack and vice versa."""
        values, bits = case
        fast_packed = pack_bits(values, bits)
        assert np.array_equal(
            _unpack_bits_generic(fast_packed, values.size, bits), values
        )
        assert np.array_equal(
            unpack_bits(_pack_bits_generic(values, bits), values.size, bits), values
        )

    @pytest.mark.parametrize("bits", range(1, 33))
    def test_extreme_values_every_width(self, bits):
        """Boundary patterns (all zeros, all ones, alternating) per width."""
        top = (1 << bits) - 1
        values = np.array([0, top, 0, top, top, 0, 1 % (top + 1)], dtype=np.uint32)
        assert pack_bits(values, bits) == _pack_bits_generic(values, bits)
        packed = pack_bits(values, bits)
        assert np.array_equal(unpack_bits(packed, values.size, bits), values)


class TestPackSegmentsEquivalence:
    @given(
        values_with_width(),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_segments_match_per_slice_pack_bits(self, case, segment_len):
        """Each segment's bytes equal pack_bits of the matching slice."""
        values, bits = case
        plane = pack_segments(values, bits, segment_len)
        assert plane.num_segments == -(-values.size // segment_len) if values.size else True
        for i in range(plane.num_segments):
            lo = i * segment_len
            piece = values[lo : lo + segment_len]
            assert bytes(plane.segment(i)) == pack_bits(piece, bits)
            assert plane.segment_count(i) == piece.size

    @given(
        values_with_width(),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_unpack_batch_inverts_full_segments(self, case, segment_len):
        values, bits = case
        plane = pack_segments(values, bits, segment_len)
        full = [
            plane.segment(i)
            for i in range(plane.num_segments)
            if plane.segment_count(i) == segment_len
        ]
        if not full:
            return
        matrix = unpack_batch(full, segment_len, bits)
        assert matrix.shape == (len(full), segment_len)
        expected = values[: len(full) * segment_len].reshape(len(full), segment_len)
        assert np.array_equal(matrix, expected)

    def test_unpack_batch_rejects_ragged_chunks(self):
        values = np.arange(16, dtype=np.uint32) % 2
        plane = pack_segments(values, 1, 8)
        good = bytes(plane.segment(0))
        with pytest.raises(ValueError, match="exactly"):
            unpack_batch([good, good[:-1] + b""], 8, 1)

    def test_unpack_batch_accepts_memoryviews(self):
        values = np.arange(24, dtype=np.uint32) % 8
        plane = pack_segments(values, 3, 8)
        chunks = [plane.segment(i) for i in range(plane.num_segments)]
        assert all(isinstance(c, memoryview) for c in chunks)
        matrix = unpack_batch(chunks, 8, 3)
        assert np.array_equal(matrix.reshape(-1), values)

    def test_empty_plane(self):
        plane = pack_segments(np.zeros(0, dtype=np.uint32), 5, 10)
        assert plane.num_segments == 0
        assert plane.buffer == b""
        assert unpack_batch([], 10, 5).shape == (0, 10)

    @pytest.mark.parametrize("bits", range(1, 33))
    def test_partial_final_segment_zero_pad_is_invisible(self, bits):
        """The padded final segment's bytes equal packing the short slice."""
        top = (1 << bits) - 1
        values = (np.arange(19, dtype=np.uint64) * 7919 % (top + 1)).astype(np.uint32)
        plane = pack_segments(values, bits, 8)
        last = plane.num_segments - 1
        assert bytes(plane.segment(last)) == pack_bits(values[last * 8 :], bits)
