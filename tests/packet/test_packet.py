"""Tests for the Packet object and the trim operation."""

import numpy as np
import pytest

from repro.packet import (
    FLAG_METADATA,
    GRADIENT_HEADER_BYTES,
    WIRE_HEADER_BYTES,
    GradientHeader,
    Packet,
    pack_bits,
)


def gradient_packet(coord_count=365, head_bits=1, tail_bits=31, flags=0):
    header = GradientHeader(
        codec_id=1,
        head_bits=head_bits,
        tail_bits=tail_bits,
        message_id=1,
        epoch=0,
        chunk_index=1,
        coord_offset=0,
        coord_count=coord_count,
        seed=0,
        flags=flags,
    )
    rng = np.random.default_rng(0)
    heads = rng.integers(0, 2, coord_count).astype(np.uint32)
    tails = rng.integers(0, 2**31, coord_count).astype(np.uint32)
    payload = header.to_bytes() + pack_bits(heads, head_bits) + pack_bits(tails, tail_bits)
    return Packet(src="h0", dst="h1", payload=payload, grad_header=header)


class TestWireSize:
    def test_includes_42_byte_header(self):
        pkt = Packet(src="a", dst="b", payload=b"x" * 100)
        assert pkt.wire_size == WIRE_HEADER_BYTES + 100

    def test_empty_payload(self):
        assert Packet(src="a", dst="b").wire_size == WIRE_HEADER_BYTES


class TestTrim:
    def test_trim_keeps_header_plus_heads(self):
        pkt = gradient_packet(coord_count=365)
        trimmed = pkt.trim()
        # 365 one-bit heads pack into 46 bytes.
        assert len(trimmed.payload) == GRADIENT_HEADER_BYTES + 46
        assert trimmed.is_trimmed
        assert trimmed.grad_header.trimmed
        assert trimmed.trimmed_from == pkt.wire_size

    def test_trim_raises_priority(self):
        trimmed = gradient_packet().trim()
        assert trimmed.priority >= 1

    def test_original_untouched(self):
        pkt = gradient_packet()
        size_before = pkt.wire_size
        pkt.trim()
        assert pkt.wire_size == size_before
        assert not pkt.is_trimmed

    def test_non_gradient_packet_not_trimmable(self):
        pkt = Packet(src="a", dst="b", payload=b"x" * 1000)
        assert pkt.trimmable_bytes() is None
        with pytest.raises(ValueError, match="not trimmable"):
            pkt.trim()

    def test_metadata_packet_not_trimmable(self):
        pkt = gradient_packet(flags=FLAG_METADATA)
        assert pkt.trimmable_bytes() is None

    def test_ack_not_trimmable(self):
        pkt = gradient_packet()
        pkt.is_ack = True
        assert pkt.trimmable_bytes() is None

    def test_already_short_packet_not_trimmable(self):
        # A packet whose payload is already at (or below) the keep
        # threshold cannot shrink further.
        pkt = gradient_packet(coord_count=365)
        pkt.payload = pkt.payload[: GRADIENT_HEADER_BYTES + 10]
        assert pkt.trimmable_bytes() is None

    def test_trimmed_payload_is_prefix(self):
        pkt = gradient_packet(coord_count=100)
        trimmed = pkt.trim()
        body = trimmed.payload[GRADIENT_HEADER_BYTES:]
        assert pkt.payload[GRADIENT_HEADER_BYTES : GRADIENT_HEADER_BYTES + len(body)] == body

    def test_trim_shrinks_wire_size_drastically(self):
        pkt = gradient_packet(coord_count=356)
        trimmed = pkt.trim()
        assert trimmed.wire_size < pkt.wire_size * 0.1


class TestIdentity:
    def test_packet_ids_unique(self):
        a = Packet(src="a", dst="b")
        b = Packet(src="a", dst="b")
        assert a.packet_id != b.packet_id

    def test_clone_gets_fresh_id(self):
        pkt = gradient_packet()
        clone = pkt.clone()
        assert clone.packet_id != pkt.packet_id
        assert clone.payload == pkt.payload

    def test_is_gradient(self):
        assert gradient_packet().is_gradient
        assert not Packet(src="a", dst="b").is_gradient
