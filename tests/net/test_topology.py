"""Tests for topology builders and routing."""

import pytest

from repro.net import Network, dumbbell, fat_tree, leaf_spine
from repro.packet import Packet


class TestNetworkBasics:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_host("a")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_switch("a")

    def test_device_lookup(self):
        net = Network()
        host = net.add_host("h")
        switch = net.add_switch("s")
        assert net.device("h") is host
        assert net.device("s") is switch
        with pytest.raises(KeyError):
            net.device("zzz")

    def test_link_between(self):
        net = dumbbell(pairs=1)
        link = net.link_between("s0", "s1")
        assert link.dst.name == "s1"
        uplink = net.link_between("tx0", "s0")
        assert uplink.dst.name == "s0"


class TestDumbbell:
    def test_end_to_end_delivery(self):
        net = dumbbell(pairs=2)
        got = []
        net.hosts["rx1"].set_default_handler(got.append)
        net.hosts["tx1"].send(Packet(src="tx1", dst="rx1", payload=b"ping"))
        net.sim.run()
        assert len(got) == 1
        assert got[0].payload == b"ping"

    def test_all_pairs_routed(self):
        net = dumbbell(pairs=3)
        counts = {}
        for i in range(3):
            net.hosts[f"rx{i}"].set_default_handler(
                lambda p, i=i: counts.__setitem__(i, counts.get(i, 0) + 1)
            )
        for i in range(3):
            net.hosts[f"tx{i}"].send(Packet(src=f"tx{i}", dst=f"rx{i}"))
        net.sim.run()
        assert counts == {0: 1, 1: 1, 2: 1}

    def test_bottleneck_is_shared(self):
        """Two senders at full edge rate overload a half-rate bottleneck."""
        net = dumbbell(pairs=2, edge_rate_bps=1e9, bottleneck_rate_bps=1e9)
        for i in range(2):
            for _ in range(50):
                net.hosts[f"tx{i}"].send(
                    Packet(src=f"tx{i}", dst=f"rx{i}", payload=b"\x00" * 1458)
                )
        net.sim.run()
        # 100 packets of 1500 B at 1 Gb/s bottleneck: at least 1.2 ms.
        assert net.sim.now > 1.1e-3

    def test_impairment_applies_both_directions(self):
        net = dumbbell(pairs=1)
        net.set_impairment("s0", "s1", drop_prob=0.25)
        assert net.link_between("s0", "s1").drop_prob == 0.25
        assert net.link_between("s1", "s0").drop_prob == 0.25


class TestLeafSpine:
    def test_shape(self):
        net = leaf_spine(leaves=2, spines=2, hosts_per_leaf=3)
        assert len(net.hosts) == 6
        assert len(net.switches) == 4

    def test_cross_leaf_delivery(self):
        net = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2)
        got = []
        net.hosts["h1_0"].set_default_handler(got.append)
        net.hosts["h0_0"].send(Packet(src="h0_0", dst="h1_0", payload=b"x"))
        net.sim.run()
        assert len(got) == 1

    def test_same_leaf_stays_local(self):
        net = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2)
        got = []
        net.hosts["h0_1"].set_default_handler(got.append)
        net.hosts["h0_0"].send(Packet(src="h0_0", dst="h0_1"))
        net.sim.run()
        for spine in ("spine0", "spine1"):
            assert net.switches[spine].stats.forwarded == 0
        assert len(got) == 1


class TestFatTree:
    def test_k4_shape(self):
        net = fat_tree(k=4)
        assert len(net.hosts) == 16
        assert len(net.switches) == 4 + 8 + 8  # cores + aggs + edges

    def test_cross_pod_delivery(self):
        net = fat_tree(k=4)
        got = []
        net.hosts["h3_1_1"].set_default_handler(got.append)
        net.hosts["h0_0_0"].send(Packet(src="h0_0_0", dst="h3_1_1"))
        net.sim.run()
        assert len(got) == 1

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(k=3)


class TestStatsAggregation:
    def test_total_switch_stats(self):
        net = dumbbell(pairs=1)
        net.hosts["tx0"].send(Packet(src="tx0", dst="rx0"))
        net.sim.run()
        totals = net.total_switch_stats()
        assert totals["forwarded"] == 2  # s0 and s1 each forwarded once
        assert totals["dropped"] == 0


class TestSwitchBurst:
    """switch_burst is opt-in: default fabric keeps per-packet egress
    events (express-band preemption exact); opting in batches egress
    serialization without changing what is delivered or when, as long as
    no express-band arrival lands mid-burst."""

    def test_default_is_per_packet(self):
        net = dumbbell(pairs=1, host_burst=8)
        assert net.link_between("s0", "s1").burst == 1
        assert net.link_between("tx0", "s0").burst == 8

    def test_builders_plumb_switch_burst(self):
        assert dumbbell(pairs=1, switch_burst=4).link_between("s0", "s1").burst == 4
        assert (
            leaf_spine(leaves=2, spines=1, hosts_per_leaf=1, switch_burst=4)
            .link_between("leaf0", "spine0").burst == 4
        )
        assert fat_tree(k=4, switch_burst=4).link_between("edge0_0", "agg0_0").burst == 4

    def test_invalid_burst_rejected(self):
        with pytest.raises(ValueError, match="switch_burst"):
            Network(switch_burst=0)

    def test_host_links_unaffected_by_switch_burst(self):
        net = dumbbell(pairs=1, switch_burst=4)
        assert net.link_between("tx0", "s0").burst == 1
        assert net.link_between("rx0", "s1").burst == 1

    def _delivery_times(self, switch_burst):
        net = dumbbell(pairs=2, switch_burst=switch_burst)
        deliveries = []
        for i in range(2):
            host = net.hosts[f"rx{i}"]
            host.set_default_handler(
                lambda p, sim=net.sim: deliveries.append((sim.now, p.src, p.seq))
            )
        # Two senders flood the shared bottleneck with same-priority
        # data: the express band stays empty, so batching must preserve
        # every delivery time exactly.
        for i in range(2):
            for seq in range(40):
                net.hosts[f"tx{i}"].send(
                    Packet(src=f"tx{i}", dst=f"rx{i}", payload=b"x" * 1000, seq=seq)
                )
        net.sim.run()
        deliveries.sort(key=lambda d: (d[0], d[1], d[2]))
        return deliveries

    def test_burst_preserves_delivery_times_without_express_traffic(self):
        per_packet = self._delivery_times(1)
        batched = self._delivery_times(8)
        assert len(per_packet) == len(batched) == 80
        for (t1, src1, seq1), (t8, src8, seq8) in zip(per_packet, batched):
            # Identical packets at identical instants; the batched path
            # sums serialization times in one cumsum, so the timestamps
            # may differ by float-rounding only.
            assert (src1, seq1) == (src8, seq8)
            assert t8 == pytest.approx(t1, rel=1e-9, abs=1e-15)
