"""QueueMonitor analysis API: percentiles, summaries, deadlines, rescheduling."""

import pytest

from repro.net import QueueMonitor, dumbbell
from repro.packet import Packet


def congested_monitor(period_s=1e-6, stop_at=None):
    net = dumbbell(pairs=1, edge_rate_bps=10e9, bottleneck_rate_bps=1e9)
    monitor = QueueMonitor(net.sim, period_s=period_s, stop_at=stop_at)
    monitor.watch("b", net.link_between("s0", "s1"))
    for _ in range(30):
        net.hosts["tx0"].send(Packet(src="tx0", dst="rx0", payload=b"\x00" * 1458))
    return net, monitor


class TestPercentiles:
    def test_percentiles_are_monotone(self):
        net, monitor = congested_monitor()
        net.sim.run()
        p50 = monitor.percentile("b", 50)
        p90 = monitor.percentile("b", 90)
        p99 = monitor.percentile("b", 99)
        assert 0 <= p50 <= p90 <= p99 <= monitor.peak_bytes("b")
        assert p99 > 0  # the bottleneck really did queue

    def test_percentile_bounds_checked(self):
        net, monitor = congested_monitor()
        net.sim.run()
        with pytest.raises(ValueError, match="percentile"):
            monitor.percentile("b", -1)
        with pytest.raises(ValueError, match="percentile"):
            monitor.percentile("b", 101)

    def test_percentile_of_empty_series_is_zero(self):
        net = dumbbell(pairs=1)
        monitor = QueueMonitor(net.sim)
        monitor.watch("b", net.link_between("s0", "s1"))
        assert monitor.percentile("b", 99) == 0.0

    def test_summary_bundle(self):
        net, monitor = congested_monitor()
        net.sim.run()
        summary = monitor.summary("b")
        assert set(summary) == {"samples", "mean", "p50", "p90", "p99", "peak"}
        assert summary["samples"] == len(monitor.samples["b"])
        assert summary["peak"] == monitor.peak_bytes("b")
        assert summary["mean"] == pytest.approx(monitor.mean_bytes("b"))
        assert summary["p50"] <= summary["p90"] <= summary["p99"] <= summary["peak"]


class TestScheduling:
    def test_stop_at_deadline_halts_sampling(self):
        deadline = 20e-6
        net, monitor = congested_monitor(period_s=1e-6, stop_at=deadline)
        net.sim.run()
        times = [s.time for s in monitor.samples["b"]]
        assert times  # it did sample
        # One final tick may land exactly at/after the deadline check,
        # but nothing is scheduled past it.
        assert max(times) <= deadline + monitor.period_s

    def test_monitor_never_prolongs_the_run(self):
        """The reschedule rule: with no other pending work, the monitor
        must let the simulation end rather than tick forever."""
        net = dumbbell(pairs=1)
        monitor = QueueMonitor(net.sim, period_s=1e-6)
        monitor.watch("b", net.link_between("s0", "s1"))
        net.hosts["tx0"].send(Packet(src="tx0", dst="rx0"))
        end = net.sim.run()
        assert end < 1e-3
        assert net.sim.pending() == 0

    def test_monitor_alone_ticks_once_then_stops(self):
        net = dumbbell(pairs=1)
        monitor = QueueMonitor(net.sim, period_s=1e-6)
        monitor.watch("b", net.link_between("s0", "s1"))
        # No traffic at all: the first tick sees pending() == 0 and
        # does not reschedule.
        net.sim.run()
        assert len(monitor.samples["b"]) == 1
        assert net.sim.pending() == 0

    def test_sampling_resumes_via_new_watch(self):
        net = dumbbell(pairs=1)
        monitor = QueueMonitor(net.sim, period_s=1e-6)
        monitor.watch("a", net.link_between("s0", "s1"))
        net.sim.run()
        before = len(monitor.samples["a"])
        # Watching a new queue restarts the tick loop.
        monitor.watch("b", net.link_between("s1", "s0"))
        net.sim.run()
        assert len(monitor.samples["a"]) > before


class TestLiveGauges:
    """The fill/band occupancy gauges and network-wide watching."""

    def registry_gauge(self, name, labels):
        from repro.obs.metrics import get_registry

        return get_registry().gauge(name, labels=labels)

    def test_fill_ratio_gauge_tracks_watched_queue(self):
        net, monitor = congested_monitor()
        net.sim.run()
        fill = self.registry_gauge("repro_queue_fill_ratio", ("queue",))
        value = fill.value(queue="b")
        assert 0.0 <= value <= 1.0

    def test_band_bytes_gauge_per_priority_band(self):
        net, monitor = congested_monitor()
        net.sim.run()
        band = self.registry_gauge("repro_queue_band_bytes", ("queue", "band"))
        queue = net.link_between("s0", "s1").queue
        for idx in range(len(queue.bands)):
            assert band.value(queue="b", band=str(idx)) >= 0.0

    def test_watch_network_covers_every_switch_port(self):
        net = dumbbell(pairs=2)
        monitor = QueueMonitor(net.sim)
        labels = monitor.watch_network(net)
        expected = {
            f"{name}->{neighbor}"
            for name, switch in net.switches.items()
            for neighbor in switch.ports
        }
        assert set(labels) == expected
        assert labels == sorted(labels)  # deterministic ordering
        # Idempotent: a second call finds nothing new to watch.
        assert monitor.watch_network(net) == []
