"""SwitchStats derived rates: enqueues, trim_fraction, drop_fraction."""

import pytest

from repro.net import Switch, SwitchStats


class TestFractions:
    def test_zero_activity_is_zero_not_nan(self):
        stats = SwitchStats()
        assert stats.enqueues == 0
        assert stats.trim_fraction == 0.0
        assert stats.drop_fraction == 0.0

    def test_fractions_over_all_egress_decisions(self):
        stats = SwitchStats(forwarded=6, trimmed=3, dropped=1)
        assert stats.enqueues == 10
        assert stats.trim_fraction == pytest.approx(0.3)
        assert stats.drop_fraction == pytest.approx(0.1)

    def test_all_trimmed(self):
        stats = SwitchStats(trimmed=5)
        assert stats.trim_fraction == 1.0
        assert stats.drop_fraction == 0.0

    def test_note_drop_feeds_fraction_and_kind(self):
        stats = SwitchStats(forwarded=3)
        stats.note_drop("buffer-overflow")
        stats.note_drop("buffer-overflow")
        stats.note_drop("no-route")
        assert stats.dropped == 3
        assert stats.drop_fraction == pytest.approx(0.5)
        assert stats.drops_by_kind == {"buffer-overflow": 2, "no-route": 1}

    def test_live_switch_exposes_fractions(self):
        from repro.net import Simulator

        switch = Switch("sw", Simulator())
        assert switch.stats.trim_fraction == 0.0
        assert switch.stats.drop_fraction == 0.0
