"""Tests for the discrete-event engine."""

import pytest

from repro.net import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        hits = []

        def outer():
            hits.append(sim.now)
            if len(hits) < 4:
                sim.schedule(1.0, outer)

        sim.schedule(1.0, outer)
        sim.run()
        assert hits == [1.0, 2.0, 3.0, 4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="in the past"):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        witness = []
        sim.schedule_at(2.5, lambda: witness.append(sim.now))
        sim.run()
        assert witness == [2.5]


class TestRunControls:
    def test_until_stops_without_dropping_events(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(3.0, lambda: hits.append(3))
        sim.run(until=2.0)
        assert hits == [1]
        assert sim.now == 2.0
        sim.run()
        assert hits == [1, 3]

    def test_event_exactly_at_until_runs(self):
        sim = Simulator()
        hits = []
        sim.schedule(2.0, lambda: hits.append(2))
        sim.run(until=2.0)
        assert hits == [2]

    def test_max_events_safety_valve(self):
        sim = Simulator()

        def forever():
            sim.schedule(1e-9, forever)

        sim.schedule(0.0, forever)
        sim.run(max_events=100)
        assert sim.events_processed == 100

    def test_run_on_empty_heap_returns_now(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_run_until_with_no_events_advances_clock(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        hits = []
        event = sim.schedule(1.0, lambda: hits.append("x"))
        event.cancel()
        sim.run()
        assert hits == []

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        kill = sim.schedule(2.0, lambda: None)
        kill.cancel()
        assert sim.pending() == 1
        keep.cancel()
        assert sim.pending() == 0

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None


class TestPendingCounter:
    """pending() is a live counter (O(1)), not a heap scan — it must stay
    exact across every push/pop/cancel interleaving."""

    def test_counts_scheduled_events(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.pending() == 5

    def test_decrements_as_events_run(self):
        sim = Simulator()
        observed = []
        for i in range(3):
            sim.schedule(float(i + 1), lambda: observed.append(sim.pending()))
        sim.run()
        # Each callback sees the events still queued after it was popped.
        assert observed == [2, 1, 0]

    def test_double_cancel_is_single_decrement(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        victim = sim.schedule(2.0, lambda: None)
        victim.cancel()
        victim.cancel()
        assert sim.pending() == 1

    def test_cancel_after_run_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        assert sim.pending() == 1
        event.cancel()  # already executed; must not corrupt the counter
        assert sim.pending() == 1

    def test_cancel_inside_callback(self):
        sim = Simulator()
        later = sim.schedule(2.0, lambda: None)
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert sim.pending() == 0
        assert sim.events_processed == 1

    def test_reschedule_from_callback_keeps_count(self):
        sim = Simulator()
        def chain(depth):
            if depth:
                sim.schedule(1.0, lambda: chain(depth - 1))
        sim.schedule(1.0, lambda: chain(3))
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0

    def test_counter_matches_queue_truth(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(20)]
        for event in events[::3]:
            event.cancel()
        live_truth = sum(
            1 for entry in sim._entries() if not entry[2].cancelled
        )
        assert sim.pending() == live_truth


class TestFastPathScheduling:
    """schedule_call / schedule_batch share the (time, sequence) stream
    with schedule(), so mixing the APIs must stay deterministic."""

    def test_schedule_call_runs_with_argument(self):
        sim = Simulator()
        hits = []
        sim.schedule_call(1.0, hits.append, "x")
        sim.run()
        assert hits == ["x"]
        assert sim.now == 1.0

    def test_schedule_call_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="in the past"):
            sim.schedule_call(-1e-9, lambda _: None, None)

    def test_mixed_apis_interleave_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule_call(1.0, order.append, "b")
        sim.schedule_batch([(1.0, order.append, "c")])
        sim.schedule(1.0, lambda: order.append("d"))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_schedule_batch_matches_per_call_posting(self):
        posted = [(0.5, 2), (2.5, 0), (0.5, 1), (3.0, 3)]
        batched, looped = Simulator(), Simulator()
        got_b, got_l = [], []
        batched.schedule_batch((d, got_b.append, tag) for d, tag in posted)
        for delay, tag in posted:
            looped.schedule_call(delay, got_l.append, tag)
        batched.run()
        looped.run()
        assert got_b == got_l == [2, 1, 0, 3]

    def test_schedule_batch_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="in the past"):
            sim.schedule_batch([(1.0, lambda _: None, None), (-0.5, lambda _: None, None)])

    def test_fast_entries_count_as_pending(self):
        sim = Simulator()
        sim.schedule_call(1.0, lambda _: None, None)
        sim.schedule_batch([(2.0, lambda _: None, None)] * 3)
        assert sim.pending() == 4
        sim.run()
        assert sim.pending() == 0

    def test_far_future_calls_cross_the_ring_horizon(self):
        # Default ring covers 1024 us; one second is deep overflow-heap
        # territory, and the calendar must still drain in time order.
        sim = Simulator()
        order = []
        sim.schedule_call(1.0, order.append, "far")
        sim.schedule_call(1e-6, order.append, "near")
        sim.schedule(0.5, lambda: order.append("mid"))
        sim.run()
        assert order == ["near", "mid", "far"]


class TestLazyCancelCompaction:
    """Cancel-heavy workloads (per-packet timer re-arming) must not grow
    the calendar without bound: dead entries are compacted away once
    they outnumber live ones."""

    def _structure_size(self, sim):
        return sum(1 for _ in sim._entries())

    def test_cancel_churn_keeps_structure_bounded(self):
        sim = Simulator()
        keepers = [sim.schedule(float(i + 1), lambda: None) for i in range(8)]
        # A transport-style timer loop: arm, cancel, re-arm — thousands
        # of times, never letting the event run.
        for i in range(5000):
            sim.schedule(1e-6 * (i % 512 + 1), lambda: None).cancel()
            if i % 97 == 0:
                # Structure holds the live events plus at most the dead
                # tolerated before compaction kicks in (_COMPACT_MIN_DEAD
                # plus the live count at trigger time).
                assert self._structure_size(sim) <= len(keepers) + 64 + len(keepers) + 1
        assert sim.pending() == len(keepers)
        assert self._structure_size(sim) < 100

    def test_compaction_spans_ring_and_overflow(self):
        sim = Simulator()
        survivor = sim.schedule(2000e-6, lambda: None)  # past the 1024-bucket horizon
        victims = [sim.schedule(1e-6 * (i % 2000 + 1), lambda: None) for i in range(300)]
        for event in victims:
            event.cancel()
        # All dead ring + overflow entries are gone; the survivor remains.
        entries = list(sim._entries())
        live = [e for e in entries if not e[2].cancelled]
        assert len(live) == 1 and live[0][2] is survivor
        assert len(entries) < 100
        assert sim.pending() == 1

    def test_compaction_preserves_ordering(self):
        sim = Simulator()
        order = []
        for i in range(6):
            sim.schedule(float(i + 1), lambda i=i: order.append(i))
        churn = [sim.schedule(0.5, lambda: None) for _ in range(200)]
        for event in churn:
            event.cancel()
        sim.run()
        assert order == [0, 1, 2, 3, 4, 5]

    def test_cancel_counters_stay_consistent(self):
        sim = Simulator()
        events = [sim.schedule(float(i % 7 + 1), lambda: None) for i in range(400)]
        for event in events[::2]:
            event.cancel()
        live_truth = sum(
            1
            for entry in sim._entries()
            if len(entry) == 3 and not entry[2].cancelled
        )
        assert sim.pending() == live_truth == 200
        sim.run()
        assert sim.pending() == 0
        assert sim.events_processed == 200
