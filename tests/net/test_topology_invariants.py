"""Topology invariants: the builders produce the shapes the math says.

Fat-tree counts follow Al-Fares et al.: a k-ary fat-tree has k pods,
(k/2)^2 cores, k^2/2 pod switches, k^3/4 hosts and a bisection of
k^3/8 core links.  Reachability is checked with the routing actually
installed (``Network.flow_path``), not just graph connectivity — a
wired-but-unrouted fabric must fail here.
"""

import itertools

import networkx as nx
import pytest

from repro.net.topology import dumbbell, fat_tree, leaf_spine


class TestFatTreeCounts:
    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_switch_and_host_counts(self, k):
        net = fat_tree(k=k)
        assert len(net.switches) == 5 * k * k // 4
        assert len(net.hosts) == k**3 // 4
        cores = [s for s in net.switches if s.startswith("core")]
        aggs = [s for s in net.switches if s.startswith("agg")]
        edges = [s for s in net.switches if s.startswith("edge")]
        assert len(cores) == (k // 2) ** 2
        assert len(aggs) == len(edges) == k * k // 2

    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_link_counts(self, k):
        net = fat_tree(k=k)
        # Host, edge-agg and agg-core tiers each contribute k^3/4 cables.
        assert net.graph.number_of_edges() == 3 * k**3 // 4
        for host in net.hosts:
            assert net.graph.degree(host) == 1
        for core in (s for s in net.switches if s.startswith("core")):
            assert net.graph.degree(core) == k

    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_bisection_width(self, k):
        net = fat_tree(k=k)
        # Cut the fabric between the left and right half of the pods:
        # only agg<->core cables cross, (k/2 pods) * (k/2 aggs) * (k/2
        # core links each) = k^3/8 — full bisection bandwidth.
        left_aggs = {
            f"agg{pod}_{i}" for pod in range(k // 2) for i in range(k // 2)
        }
        crossing = sum(
            1
            for a, b in net.graph.edges
            if (a in left_aggs and b.startswith("core"))
            or (b in left_aggs and a.startswith("core"))
        )
        assert crossing == k**3 // 8


class TestFatTreeReachability:
    def test_all_pairs_shortest_paths_k4(self):
        net = fat_tree(k=4)
        for src, dst in itertools.permutations(net.hosts, 2):
            path = net.flow_path(src, dst, flow_id=1)
            assert path[0] == src and path[-1] == dst
            assert len(path) - 1 == nx.shortest_path_length(net.graph, src, dst)

    def test_all_pairs_shortest_paths_k4_ecmp(self):
        net = fat_tree(k=4, ecmp=True, ecmp_seed=3)
        for src, dst in itertools.permutations(net.hosts, 2):
            path = net.flow_path(src, dst, flow_id=9)
            assert len(path) - 1 == nx.shortest_path_length(net.graph, src, dst)

    def test_sampled_pairs_k6(self):
        net = fat_tree(k=6, ecmp=True, ecmp_seed=1)
        hosts = sorted(net.hosts)
        samples = [(hosts[i], hosts[-1 - i]) for i in range(0, len(hosts), 5)]
        for src, dst in samples:
            if src == dst:
                continue
            path = net.flow_path(src, dst, flow_id=2)
            assert len(path) - 1 == nx.shortest_path_length(net.graph, src, dst)

    def test_path_tiers(self):
        net = fat_tree(k=4)
        # Same edge: h -> edge -> h'.
        assert len(net.flow_path("h0_0_0", "h0_0_1", 1)) == 3
        # Same pod, different edge: via one agg.
        assert len(net.flow_path("h0_0_0", "h0_1_0", 1)) == 5
        # Cross-pod: via one core.
        path = net.flow_path("h0_0_0", "h3_1_1", 1)
        assert len(path) == 7
        assert any(node.startswith("core") for node in path)


class TestLeafSpineShape:
    @pytest.mark.parametrize("leaves,spines,per_leaf", [(2, 2, 4), (4, 3, 2)])
    def test_counts(self, leaves, spines, per_leaf):
        net = leaf_spine(leaves=leaves, spines=spines, hosts_per_leaf=per_leaf)
        assert len(net.switches) == leaves + spines
        assert len(net.hosts) == leaves * per_leaf
        assert net.graph.number_of_edges() == leaves * spines + leaves * per_leaf
        for s in range(spines):
            assert net.graph.degree(f"spine{s}") == leaves

    def test_cross_leaf_paths_use_a_spine(self):
        net = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2, ecmp=True)
        path = net.flow_path("h0_0", "h1_1", flow_id=4)
        assert len(path) == 5
        assert path[2].startswith("spine")


class TestDumbbellShape:
    @pytest.mark.parametrize("pairs", [1, 4])
    def test_counts(self, pairs):
        net = dumbbell(pairs=pairs)
        assert len(net.switches) == 2
        assert len(net.hosts) == 2 * pairs
        assert net.graph.number_of_edges() == 2 * pairs + 1

    def test_paths_cross_the_bottleneck(self):
        net = dumbbell(pairs=2)
        assert net.flow_path("tx0", "rx1", 1) == ["tx0", "s0", "s1", "rx1"]


class TestReservedDeviceNames:
    """Device names may not alias the INT hop registry's interned ids."""

    def test_hop_fallback_names_rejected(self):
        net = dumbbell(pairs=1)
        with pytest.raises(ValueError, match="INT hop registry"):
            net.add_host("hop3")
        with pytest.raises(ValueError, match="INT hop registry"):
            net.add_switch("hop12")

    def test_link_label_names_rejected(self):
        net = dumbbell(pairs=1)
        with pytest.raises(ValueError, match="INT hop registry"):
            net.add_host("a->b")
        with pytest.raises(ValueError, match="INT hop registry"):
            net.add_switch("s0->s1")

    def test_duplicates_still_rejected(self):
        net = dumbbell(pairs=1)
        with pytest.raises(ValueError, match="duplicate"):
            net.add_host("tx0")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_switch("s0")
        # Across kinds too: a host may not shadow a switch.
        with pytest.raises(ValueError, match="duplicate"):
            net.add_host("s1")

    def test_ordinary_names_still_fine(self):
        net = dumbbell(pairs=1)
        net.add_host("hopper")  # contains "hop" but is not hop<N>
        net.add_switch("shop2floor")
