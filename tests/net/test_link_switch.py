"""Tests for links, switches, and trim-on-overflow forwarding."""

import numpy as np
import pytest

from repro.core import SignMagnitudeCodec, packetize
from repro.net import GBPS, Host, Link, Simulator, Switch
from repro.packet import Packet, SingleLevelTrim


def gradient_packets(n=2000, src="tx", dst="rx"):
    enc = SignMagnitudeCodec().encode(np.random.default_rng(0).standard_normal(n))
    return packetize(enc, src, dst)


class Sink(Host):
    """Host that records everything it receives."""

    def __init__(self, name, sim):
        super().__init__(name, sim)
        self.inbox = []
        self.set_default_handler(self.inbox.append)


class TestLink:
    def test_serialization_delay(self):
        sim = Simulator()
        sink = Sink("rx", sim)
        link = Link(sim, "tx", sink, rate_bps=1e9, delay_s=1e-6, queue=sink.make_queue())
        packet = Packet(src="tx", dst="rx", payload=b"\x00" * 958)  # 1000 B wire
        link.enqueue(packet)
        sim.run()
        # 1000 B at 1 Gb/s = 8 us serialization + 1 us propagation.
        assert sim.now == pytest.approx(9e-6)
        assert sink.inbox == [packet]

    def test_back_to_back_packets_pipeline(self):
        sim = Simulator()
        sink = Sink("rx", sim)
        link = Link(sim, "tx", sink, rate_bps=1e9, delay_s=0.0, queue=sink.make_queue())
        for _ in range(3):
            link.enqueue(Packet(src="tx", dst="rx", payload=b"\x00" * 958))
        sim.run()
        assert sim.now == pytest.approx(24e-6)  # 3 x 8 us, serialized FIFO
        assert len(sink.inbox) == 3

    def test_drop_probability(self):
        sim = Simulator()
        sink = Sink("rx", sim)
        link = Link(
            sim, "tx", sink, rate_bps=100 * GBPS, delay_s=0.0,
            queue=sink.make_queue(), drop_prob=0.5, seed=3,
        )
        for _ in range(400):
            link.enqueue(Packet(src="tx", dst="rx", payload=b"x" * 100))
        sim.run()
        assert 130 < len(sink.inbox) < 270
        assert link.packets_dropped == 400 - len(sink.inbox)

    def test_trim_probability_only_hits_trimmable(self):
        sim = Simulator()
        sink = Sink("rx", sim)
        link = Link(
            sim, "tx", sink, rate_bps=100 * GBPS, delay_s=0.0,
            queue=sink.make_queue(), trim_prob=1.0, seed=0,
        )
        packets = gradient_packets()
        for pkt in packets:
            link.enqueue(pkt)
        link.enqueue(Packet(src="tx", dst="rx", payload=b"y" * 500))
        sim.run()
        grad_in = [p for p in sink.inbox if p.is_gradient and not p.grad_header.is_metadata]
        assert all(p.is_trimmed for p in grad_in)
        opaque = [p for p in sink.inbox if p.grad_header is None]
        assert len(opaque) == 1 and not opaque[0].is_trimmed

    def test_acks_never_impaired(self):
        sim = Simulator()
        sink = Sink("rx", sim)
        link = Link(
            sim, "tx", sink, rate_bps=100 * GBPS, delay_s=0.0,
            queue=sink.make_queue(), drop_prob=1.0,
        )
        link.enqueue(Packet(src="tx", dst="rx", is_ack=True))
        sim.run()
        assert len(sink.inbox) == 1

    def test_invalid_params(self):
        sim = Simulator()
        sink = Sink("rx", sim)
        with pytest.raises(ValueError):
            Link(sim, "tx", sink, rate_bps=0, delay_s=0, queue=sink.make_queue())
        with pytest.raises(ValueError):
            Link(sim, "tx", sink, rate_bps=1e9, delay_s=-1, queue=sink.make_queue())
        with pytest.raises(ValueError):
            Link(sim, "tx", sink, 1e9, 0, sink.make_queue(), drop_prob=1.5)

    def test_utilization(self):
        sim = Simulator()
        sink = Sink("rx", sim)
        link = Link(sim, "tx", sink, rate_bps=1e9, delay_s=0.0, queue=sink.make_queue())
        link.enqueue(Packet(src="tx", dst="rx", payload=b"\x00" * 958))
        sim.run()
        assert link.utilization(elapsed=16e-6) == pytest.approx(0.5)


def wire_switch(sim, trim_policy=None, buffer_bytes=4500, rate=1e9):
    """tx -> switch -> rx with a shallow egress buffer toward rx."""
    switch = Switch("sw", sim, buffer_bytes=buffer_bytes, trim_policy=trim_policy)
    sink = Sink("rx", sim)
    down = Link(sim, "sw", sink, rate_bps=rate, delay_s=0.0, queue=switch.make_queue())
    switch.attach("rx", down)
    switch.set_route("rx", "rx")
    return switch, sink


class TestSwitch:
    def test_forwards_by_route(self):
        sim = Simulator()
        switch, sink = wire_switch(sim)
        switch.receive(Packet(src="tx", dst="rx", payload=b"hi"))
        sim.run()
        assert len(sink.inbox) == 1
        assert switch.stats.forwarded == 1

    def test_no_route_drops(self):
        sim = Simulator()
        switch, _ = wire_switch(sim)
        switch.receive(Packet(src="tx", dst="nowhere", payload=b"hi"))
        sim.run()
        assert switch.stats.drops_by_kind["no-route"] == 1

    def test_drop_tail_overflow(self):
        sim = Simulator()
        switch, sink = wire_switch(sim, trim_policy=None, buffer_bytes=4500)
        for _ in range(10):
            switch.receive(Packet(src="tx", dst="rx", payload=b"\x00" * 1458))
        sim.run()
        assert switch.stats.dropped > 0
        assert len(sink.inbox) < 10

    def test_trim_on_overflow_keeps_heads_flowing(self):
        sim = Simulator()
        switch, sink = wire_switch(
            sim, trim_policy=SingleLevelTrim(), buffer_bytes=4500
        )
        packets = gradient_packets(3000)
        for pkt in packets:
            switch.receive(pkt)
        sim.run()
        # Every packet arrives: some full, the overflow ones trimmed.
        assert len(sink.inbox) == len(packets)
        assert switch.stats.trimmed > 0
        assert switch.stats.dropped == 0
        assert any(p.is_trimmed for p in sink.inbox)
        assert switch.stats.trimmed_bytes_saved > 0

    def test_trim_policy_drops_untrimmable_overflow(self):
        sim = Simulator()
        switch, sink = wire_switch(sim, trim_policy=SingleLevelTrim(), buffer_bytes=4500)
        for _ in range(10):
            switch.receive(Packet(src="tx", dst="rx", payload=b"\x00" * 1458))
        sim.run()
        assert switch.stats.dropped > 0

    def test_trimmed_packets_overtake_data(self):
        """A trimmed header enqueued behind full packets is served first."""
        sim = Simulator()
        switch, sink = wire_switch(sim, trim_policy=SingleLevelTrim(), buffer_bytes=4500)
        packets = gradient_packets(3000)
        for pkt in packets:
            switch.receive(pkt)
        sim.run()
        arrival_order = [p.is_trimmed for p in sink.inbox]
        # At least one trimmed packet arrives before the last full packet.
        first_trimmed = arrival_order.index(True)
        last_full = len(arrival_order) - 1 - arrival_order[::-1].index(False)
        assert first_trimmed < last_full

    def test_queue_depth_introspection(self):
        sim = Simulator()
        switch, _ = wire_switch(sim)
        switch.receive(Packet(src="tx", dst="rx", payload=b"\x00" * 1458))
        # Packet may already be in the serializer; depth is >= 0 and the
        # call itself must work.
        assert switch.queue_depth("rx") >= 0

    def test_set_route_requires_known_port(self):
        sim = Simulator()
        switch, _ = wire_switch(sim)
        with pytest.raises(ValueError, match="no port"):
            switch.set_route("rx", "unknown-neighbor")
