"""Tests for byte-bounded and strict-priority queues."""

import pytest

from repro.net import ByteQueue, PriorityQueue
from repro.packet import Packet


def pkt(size_payload=1458, priority=0):
    return Packet(src="a", dst="b", payload=b"\x00" * size_payload, priority=priority)


class TestByteQueue:
    def test_fifo_order(self):
        q = ByteQueue(capacity_bytes=10_000)
        first, second = pkt(), pkt()
        q.push(first)
        q.push(second)
        assert q.pop() is first
        assert q.pop() is second
        assert q.pop() is None

    def test_capacity_enforced_in_bytes(self):
        q = ByteQueue(capacity_bytes=3100)  # fits two 1500 B packets
        assert q.push(pkt())
        assert q.push(pkt())
        assert not q.push(pkt())
        assert q.rejected == 1

    def test_bytes_queued_tracks_wire_size(self):
        q = ByteQueue(capacity_bytes=10_000)
        p = pkt(100)
        q.push(p)
        assert q.bytes_queued == p.wire_size
        q.pop()
        assert q.bytes_queued == 0

    def test_fill_fraction(self):
        q = ByteQueue(capacity_bytes=3000)
        q.push(pkt(1458))
        assert q.fill == pytest.approx(1500 / 3000)

    def test_peak_tracking(self):
        q = ByteQueue(capacity_bytes=10_000)
        q.push(pkt())
        q.push(pkt())
        q.pop()
        assert q.peak_bytes == 3000

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ByteQueue(0)

    def test_ecn_marks_above_threshold(self):
        q = ByteQueue(capacity_bytes=10_000, ecn_threshold_bytes=2000)
        a, b = pkt(), pkt()
        q.push(a)  # 1500 <= 2000: unmarked
        q.push(b)  # 3000 > 2000: marked
        assert not a.ecn
        assert b.ecn
        assert q.ecn_marked == 1

    def test_no_ecn_when_disabled(self):
        q = ByteQueue(capacity_bytes=10_000)
        p = pkt()
        q.push(p)
        assert not p.ecn


class TestPriorityQueue:
    def test_high_priority_served_first(self):
        q = PriorityQueue(band_capacities=[10_000, 10_000])
        normal = pkt(priority=0)
        urgent = pkt(priority=1)
        q.push(normal)
        q.push(urgent)
        assert q.pop() is urgent
        assert q.pop() is normal

    def test_band_mapping(self):
        q = PriorityQueue(band_capacities=[1000, 1000, 1000])
        assert q.band_for(pkt(priority=0)) == 2
        assert q.band_for(pkt(priority=1)) == 1
        assert q.band_for(pkt(priority=2)) == 0
        assert q.band_for(pkt(priority=99)) == 0  # clamped

    def test_band_overflow_is_per_band(self):
        q = PriorityQueue(band_capacities=[1600, 1600])
        assert q.push(pkt(priority=1))
        assert not q.push(pkt(priority=1))  # express band full
        assert q.push(pkt(priority=0))  # data band still has room

    def test_total_accounting(self):
        q = PriorityQueue(band_capacities=[10_000, 10_000])
        q.push(pkt(priority=1))
        q.push(pkt(priority=0))
        assert len(q) == 2
        assert q.bytes_queued == 3000

    def test_data_band_is_lowest(self):
        q = PriorityQueue(band_capacities=[1000, 5000])
        assert q.data_band().capacity_bytes == 5000

    def test_ecn_only_on_data_band(self):
        q = PriorityQueue(band_capacities=[5000, 5000], ecn_threshold_bytes=100)
        urgent = pkt(priority=1)
        normal = pkt(priority=0)
        q.push(urgent)
        q.push(normal)
        assert not urgent.ecn
        assert normal.ecn

    def test_empty_bands_rejected(self):
        with pytest.raises(ValueError):
            PriorityQueue(band_capacities=[])
