"""ECMP property tests: determinism, spread, and packet order.

Three properties the cluster simulation leans on, checked over random
seeds with hypothesis:

* same (topology, seed) -> byte-identical flow placements and traces;
* many flows between one host pair spread over *all* equal-cost paths;
* per-flow hashing never reorders packets within a flow.
"""

import dataclasses
import json

from hypothesis import given, settings, strategies as st

from repro.net.crosstraffic import OnOffFlow
from repro.net.topology import fat_tree, leaf_spine
from repro.net.trace import PacketTracer
from repro.packet.packet import Packet

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)

# Pairs crossing the k=4 core (4 equal-cost paths between pods).
CROSS_POD_PAIRS = [("h0_0_0", "h2_1_1"), ("h1_0_1", "h3_0_0")]


@settings(max_examples=10, deadline=None)
@given(seed=SEEDS)
def test_same_seed_identical_placements(seed):
    """Two same-seed fabrics place every flow on the same path."""
    net_a = fat_tree(k=4, ecmp=True, ecmp_seed=seed)
    net_b = fat_tree(k=4, ecmp=True, ecmp_seed=seed)
    for src, dst in CROSS_POD_PAIRS:
        for flow_id in range(40):
            assert net_a.flow_path(src, dst, flow_id) == net_b.flow_path(
                src, dst, flow_id
            )


@settings(max_examples=10, deadline=None)
@given(seed_a=SEEDS, seed_b=SEEDS)
def test_different_seeds_explore_different_placements(seed_a, seed_b):
    """Distinct salts give distinct (but individually stable) placements.

    Not every pair of salts differs on every flow — assert that across
    many flows the two placements are not all identical unless the
    seeds are equal.
    """
    if seed_a == seed_b:
        return
    net_a = fat_tree(k=4, ecmp=True, ecmp_seed=seed_a)
    net_b = fat_tree(k=4, ecmp=True, ecmp_seed=seed_b)
    src, dst = CROSS_POD_PAIRS[0]
    paths_a = [tuple(net_a.flow_path(src, dst, f)) for f in range(60)]
    paths_b = [tuple(net_b.flow_path(src, dst, f)) for f in range(60)]
    assert paths_a != paths_b


@settings(max_examples=10, deadline=None)
@given(seed=SEEDS)
def test_flows_spread_across_all_equal_cost_paths(seed):
    """Enough flows between one pair touch every spine."""
    net = leaf_spine(
        leaves=2, spines=4, hosts_per_leaf=1, ecmp=True, ecmp_seed=seed
    )
    leaf0 = net.switches["leaf0"]
    spines_hit = set()
    for flow_id in range(200):
        resolved = leaf0.route_lookup("h0_0", "h1_0", flow_id)
        assert resolved is not None
        hop, aux = resolved
        assert hop.startswith("spine")
        assert aux == ["spine0", "spine1", "spine2", "spine3"].index(hop) + 1
        spines_hit.add(hop)
    assert spines_hit == {"spine0", "spine1", "spine2", "spine3"}


@settings(max_examples=6, deadline=None)
@given(seed=SEEDS, flow_id=st.integers(min_value=0, max_value=10_000))
def test_no_intra_flow_reordering(seed, flow_id):
    """A flow's packets arrive in send order despite multipath."""
    net = fat_tree(k=4, ecmp=True, ecmp_seed=seed)
    tracer = PacketTracer(net.sim)
    tracer.attach_host(net.hosts["h3_1_1"])
    for seq in range(50):
        net.hosts["h0_0_0"].send(
            Packet(
                src="h0_0_0",
                dst="h3_1_1",
                payload=b"\x00" * 400,
                flow_id=flow_id,
                seq=seq,
            )
        )
    net.sim.run()
    seqs = [e.seq for e in tracer.of_kind("deliver") if e.flow_id == flow_id]
    assert seqs == list(range(50))


def _run_traced(seed: int) -> str:
    """One short cross-traffic run, serialized as a JSONL trace."""
    net = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2, ecmp=True, ecmp_seed=seed)
    tracer = PacketTracer(net.sim)
    for switch in net.switches.values():
        tracer.attach_switch(switch)
    for host in net.hosts.values():
        tracer.attach_host(host)
    flow = OnOffFlow(
        net.sim,
        net.hosts["h0_0"],
        "h1_1",
        rate_bps=5e9,
        burst_s=50e-6,
        idle_s=20e-6,
        seed=seed,
        stop_at=1e-3,
    )
    flow.start()
    net.sim.run(until=1.2e-3)
    lines = []
    for e in tracer.events:
        record = dataclasses.asdict(e)
        # packet_id is a process-global allocation counter (it numbers
        # every Packet ever built, like id()); behavioral determinism is
        # about what happened to which flow/seq and when.
        record.pop("packet_id")
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines)


@settings(max_examples=5, deadline=None)
@given(seed=SEEDS)
def test_trace_jsonl_byte_identical(seed):
    """Same (topology, seed) -> byte-identical event logs."""
    first = _run_traced(seed)
    second = _run_traced(seed)
    assert first == second
    assert first  # the run actually produced events


def test_cache_agrees_with_pure_lookup():
    """Live forwarding lands flows exactly where route_lookup predicts."""
    net = fat_tree(k=4, ecmp=True, ecmp_seed=11)
    src, dst = "h0_0_0", "h2_0_0"
    predicted = net.flow_path(src, dst, 77)
    net.hosts[src].send(
        Packet(src=src, dst=dst, payload=b"\x00" * 200, flow_id=77)
    )
    net.sim.run()
    for switch_name in predicted[1:-1]:
        switch = net.switches[switch_name]
        cached = switch._ecmp_cache.get((src, dst, 77))
        pure = switch.route_lookup(src, dst, 77)
        if cached is not None:  # multipath hop: cache must match
            # The flow-table entry carries (hop, aux, egress Link); the
            # placement prefix must agree with the pure resolution.
            assert cached[:2] == pure
            assert cached[2] is switch.ports[cached[0]]
        next_index = predicted.index(switch_name) + 1
        assert pure is not None and pure[0] == predicted[next_index]
