"""Tests for background traffic generators and flow logging."""

import pytest

from repro.net import FlowLog, IncastBurst, OnOffFlow, dumbbell


class TestOnOffFlow:
    def test_emits_roughly_target_load(self):
        net = dumbbell(pairs=1, edge_rate_bps=10e9, bottleneck_rate_bps=10e9)
        got = []
        net.hosts["rx0"].set_default_handler(got.append)
        flow = OnOffFlow(
            net.sim, net.hosts["tx0"], "rx0",
            rate_bps=1e9, burst_s=50e-6, idle_s=50e-6, seed=1, stop_at=10e-3,
        )
        flow.start()
        net.sim.run(until=11e-3)
        # 50% duty cycle at 1 Gb/s over 10 ms ~ 625 kB ~ 416 packets.
        assert 200 < len(got) < 650

    def test_stop_halts_emission(self):
        net = dumbbell(pairs=1)
        flow = OnOffFlow(net.sim, net.hosts["tx0"], "rx0", rate_bps=1e9, seed=0)
        flow.start()
        net.sim.run(until=100e-6)
        flow.stop()
        emitted = flow.packets_emitted
        net.sim.run(until=10e-3)
        assert flow.packets_emitted <= emitted + 1

    def test_deterministic_given_seed(self):
        counts = []
        for _ in range(2):
            net = dumbbell(pairs=1)
            flow = OnOffFlow(
                net.sim, net.hosts["tx0"], "rx0", rate_bps=2e9, seed=7, stop_at=2e-3
            )
            flow.start()
            net.sim.run(until=3e-3)
            counts.append(flow.packets_emitted)
        assert counts[0] == counts[1]


class TestIncastBurst:
    def test_all_senders_fire(self):
        net = dumbbell(pairs=3)
        got = []
        net.hosts["rx0"].set_default_handler(got.append)
        burst = IncastBurst(
            net.sim,
            senders=[net.hosts[f"tx{i}"] for i in range(3)],
            dst="rx0",
            burst_bytes=20_000,
        )
        burst.fire(at=0.0)
        net.sim.run()
        assert burst.packets_emitted == 3 * 15  # ceil(20000/1416) per sender
        assert len(got) == burst.packets_emitted  # 100G bottleneck: no loss

    def test_incast_overflows_shallow_buffer(self):
        net = dumbbell(
            pairs=4, edge_rate_bps=10e9, bottleneck_rate_bps=10e9, buffer_bytes=30_000
        )
        burst = IncastBurst(
            net.sim,
            senders=[net.hosts[f"tx{i}"] for i in range(4)],
            dst="rx0",
            burst_bytes=200_000,
        )
        burst.fire()
        net.sim.run()
        assert net.switches["s1"].stats.dropped > 0 or net.switches["s0"].stats.dropped > 0


class TestFlowLog:
    def test_open_close_fct(self):
        log = FlowLog()
        log.open(1, "a", "b", 1000, now=1.0)
        record = log.close(1, now=3.5)
        assert record.fct == pytest.approx(2.5)

    def test_duplicate_open_rejected(self):
        log = FlowLog()
        log.open(1, "a", "b", 10, now=0.0)
        with pytest.raises(ValueError, match="already open"):
            log.open(1, "a", "b", 10, now=0.0)

    def test_statistics(self):
        log = FlowLog()
        for i, fct in enumerate([1.0, 2.0, 4.0]):
            log.open(i, "a", "b", 10, now=0.0)
            log.close(i, now=fct)
        assert log.max_fct() == 4.0
        assert log.mean_fct() == pytest.approx(7.0 / 3)
        assert log.percentile_fct(50) == 2.0

    def test_incomplete_flows_excluded(self):
        log = FlowLog()
        log.open(1, "a", "b", 10, now=0.0)
        log.open(2, "a", "b", 10, now=0.0)
        log.close(1, now=1.0)
        assert len(log.completed()) == 1
        assert log.get(2).fct is None

    def test_empty_log_stats(self):
        log = FlowLog()
        assert log.max_fct() == float("inf")
        assert log.mean_fct() == float("inf")
