"""ECMP failover: selective eviction, blackhole window, rehoming.

The self-healing contract from the fabric's point of view:

* ``set_port_down`` evicts **only** flows pinned to the dead leg (after
  the reroute-convergence delay); survivors keep their exact flow-table
  entry so intra-flow ordering is untouched.
* During the stale-FIB window packets on the dead leg drop as
  "blackhole"; afterwards flows rehome onto surviving legs and count a
  reroute.
* Routes with no live alternative keep the legacy "port-blackout" kind.
* ``Network.flow_path`` predictions agree with the post-failover cache.
* ``set_failed`` kills the whole device: everything it receives drops
  as "switch-down" and its egress serializers go dark.
"""

from repro.net.topology import leaf_spine
from repro.net.trace import PacketTracer
from repro.obs.int_telemetry import (
    AUX_PATH_CHANGED,
    DECISION_FORWARD,
    INTExtension,
    hop_id,
)
from repro.packet.packet import Packet

SPINES = ["spine0", "spine1", "spine2", "spine3"]


def _build(spines: int = 4):
    return leaf_spine(
        leaves=2, spines=spines, hosts_per_leaf=1, ecmp=True, ecmp_seed=7
    )


def _send(net, flow_id: int, seq: int = 0, int_ext=None) -> Packet:
    packet = Packet(
        src="h0_0",
        dst="h1_0",
        payload=b"\x00" * 200,
        flow_id=flow_id,
        seq=seq,
        int_ext=int_ext,
    )
    net.hosts["h0_0"].send(packet)
    return packet


def _warm(net, flows: int = 40) -> None:
    """One packet per flow id pins each flow into leaf0's flow table."""
    for flow_id in range(flows):
        _send(net, flow_id)
    net.sim.run()


def _flow_via(net, spine: str, avoid=None) -> int:
    """A flow id that leaf0 hashes onto ``spine``."""
    leaf0 = net.switches["leaf0"]
    for flow_id in range(10_000, 11_000):
        resolved = leaf0.route_lookup("h0_0", "h1_0", flow_id)
        assert resolved is not None
        if resolved[0] == spine:
            return flow_id
    raise AssertionError(f"no flow hashes onto {spine}")


class TestSelectiveEviction:
    def test_survivors_keep_their_exact_cache_entry(self):
        net = _build()
        _warm(net)
        leaf0 = net.switches["leaf0"]
        before = dict(leaf0._ecmp_cache)
        survivors = {k: v for k, v in before.items() if v[0] != "spine0"}
        victims = {k for k, v in before.items() if v[0] == "spine0"}
        assert victims and survivors  # seed 7 spreads 40 flows over 4 legs

        leaf0.set_port_down("spine0")
        net.sim.run()  # lets the convergence callback fire

        for key, entry in survivors.items():
            assert leaf0._ecmp_cache[key] is entry  # identity: untouched
        for key in victims:
            assert key not in leaf0._ecmp_cache

    def test_load_accounting_decrements_exactly_the_victims(self):
        net = _build()
        _warm(net)
        leaf0 = net.switches["leaf0"]
        expected = dict(leaf0._ecmp_load)
        expected.pop("spine0")

        leaf0.set_port_down("spine0")
        net.sim.run()

        assert leaf0._ecmp_load == expected

    def test_unrelated_port_event_does_not_move_cross_traffic(self):
        """A host-facing port event must not rehash spine-bound flows."""
        net = _build()
        _warm(net)
        leaf1 = net.switches["leaf1"]
        before = dict(leaf1._ecmp_cache)
        # leaf1's flows toward h1_0 ride the single host port; downing a
        # spine-facing port it does not use for them must evict nothing.
        leaf1.set_port_down("spine3")
        net.sim.run()
        for key, entry in before.items():
            if entry[0] != "spine3":
                assert leaf1._ecmp_cache[key] is entry

    def test_ports_down_gauge_tracks_live_state(self):
        net = _build()
        leaf0 = net.switches["leaf0"]
        assert leaf0._m_ports_down.value == 0.0
        leaf0.set_port_down("spine0")
        assert leaf0._m_ports_down.value == 1.0
        leaf0.set_port_down("spine1")
        assert leaf0._m_ports_down.value == 2.0
        leaf0.set_port_down("spine0", down=False)
        assert leaf0._m_ports_down.value == 1.0


class TestFailoverReroute:
    def test_blackhole_window_then_reroute(self):
        net = _build()
        leaf0 = net.switches["leaf0"]
        flow = _flow_via(net, "spine0")
        tracer = PacketTracer(net.sim)
        tracer.attach_host(net.hosts["h1_0"])

        _send(net, flow, seq=0)
        net.sim.run()
        assert leaf0._ecmp_cache[("h0_0", "h1_0", flow)][0] == "spine0"

        # Widen the stale window so the in-flight packet lands inside it.
        leaf0.reroute_delay_s = 500e-6
        leaf0.set_port_down("spine0")
        _send(net, flow, seq=1)  # arrives before convergence: blackholed
        net.sim.run()

        assert leaf0.stats.blackhole >= 1
        assert leaf0.stats.drops_by_kind.get("blackhole", 0) >= 1
        assert leaf0._m_blackhole.value >= 1.0
        assert leaf0.stats.drops_by_kind.get("port-blackout", 0) == 0

        _send(net, flow, seq=2)  # post-convergence: rehomes
        net.sim.run()

        assert leaf0.stats.reroutes == 1
        assert leaf0._m_reroutes.value == 1.0
        new_leg = leaf0._ecmp_cache[("h0_0", "h1_0", flow)][0]
        assert new_leg in SPINES and new_leg != "spine0"
        delivered = [e.seq for e in tracer.of_kind("deliver") if e.flow_id == flow]
        assert delivered == [0, 2]

    def test_flow_path_prediction_matches_rerouted_cache(self):
        net = _build()
        leaf0 = net.switches["leaf0"]
        flow = _flow_via(net, "spine1")
        _send(net, flow)
        net.sim.run()
        leaf0.set_port_down("spine1")
        net.sim.run()
        _send(net, flow, seq=1)
        net.sim.run()
        new_leg = leaf0._ecmp_cache[("h0_0", "h1_0", flow)][0]
        assert net.flow_path("h0_0", "h1_0", flow) == [
            "h0_0", "leaf0", new_leg, "leaf1", "h1_0",
        ]

    def test_int_forward_record_carries_path_changed_flag(self):
        net = _build()
        leaf0 = net.switches["leaf0"]
        flow = _flow_via(net, "spine2")
        _send(net, flow)
        net.sim.run()
        leaf0.set_port_down("spine2")
        net.sim.run()

        packet = _send(net, flow, seq=1, int_ext=INTExtension())
        net.sim.run()

        records = [r for r in packet.int_ext.records if r.hop == hop_id("leaf0")]
        assert len(records) == 1
        record = records[0]
        assert record.decision == DECISION_FORWARD
        assert record.aux & AUX_PATH_CHANGED
        leg = SPINES[(record.aux & ~AUX_PATH_CHANGED) - 1]
        assert leg == leaf0._ecmp_cache[("h0_0", "h1_0", flow)][0]

        # The flag is one-shot: the next packet stamps a plain aux.
        follow_up = _send(net, flow, seq=2, int_ext=INTExtension())
        net.sim.run()
        plain = [r for r in follow_up.int_ext.records if r.hop == hop_id("leaf0")]
        assert plain and not plain[0].aux & AUX_PATH_CHANGED

    def test_no_live_alternative_keeps_legacy_blackout_kind(self):
        net = _build(spines=1)  # single path: leaf0 -> spine0 -> leaf1
        leaf0 = net.switches["leaf0"]
        _send(net, 5)
        net.sim.run()
        leaf0.set_port_down("spine0")
        _send(net, 5, seq=1)  # inside the stale window: blackhole
        net.sim.run()
        _send(net, 5, seq=2)  # converged, nowhere to go: port-blackout
        net.sim.run()
        assert leaf0.stats.drops_by_kind.get("blackhole", 0) == 1
        assert leaf0.stats.drops_by_kind.get("port-blackout", 0) == 1
        assert leaf0.stats.reroutes == 0

    def test_restore_does_not_flap_rerouted_flows_back(self):
        net = _build()
        leaf0 = net.switches["leaf0"]
        flow = _flow_via(net, "spine0")
        _send(net, flow)
        net.sim.run()
        leaf0.set_port_down("spine0")
        net.sim.run()
        _send(net, flow, seq=1)
        net.sim.run()
        new_entry = leaf0._ecmp_cache[("h0_0", "h1_0", flow)]
        leaf0.set_port_down("spine0", down=False)
        _send(net, flow, seq=2)
        net.sim.run()
        assert leaf0._ecmp_cache[("h0_0", "h1_0", flow)] is new_entry


class TestSwitchDown:
    def test_failed_switch_drops_everything_as_switch_down(self):
        net = _build()
        spine = net.switches["spine0"]
        flow = _flow_via(net, "spine0")
        spine.set_failed(True)
        _send(net, flow)
        net.sim.run()
        assert spine.stats.drops_by_kind.get("switch-down", 0) == 1
        assert all(not link.up for link in spine.ports.values())

    def test_revive_restores_forwarding(self):
        net = _build()
        spine = net.switches["spine0"]
        flow = _flow_via(net, "spine0")
        spine.set_failed(True)
        _send(net, flow)
        net.sim.run()
        spine.set_failed(False)
        tracer = PacketTracer(net.sim)
        tracer.attach_host(net.hosts["h1_0"])
        _send(net, flow, seq=1)
        net.sim.run()
        assert [e.seq for e in tracer.of_kind("deliver") if e.flow_id == flow] == [1]
