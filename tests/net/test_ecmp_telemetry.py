"""Tests for ECMP routing and the queue telemetry monitor."""

import pytest

from repro.net import QueueMonitor, Simulator, dumbbell, leaf_spine
from repro.packet import Packet


class TestECMP:
    def test_multi_hop_routes_installed(self):
        net = leaf_spine(leaves=2, spines=4, hosts_per_leaf=2)
        net.build_routes(ecmp=True)
        leaf0 = net.switches["leaf0"]
        # Toward a host on the other leaf there are 4 equal spine paths.
        assert len(leaf0.routes["h1_0"]) == 4
        # Toward a local host there is exactly one hop: the host itself.
        assert leaf0.routes["h0_0"] == ["h0_0"]

    def test_flows_spread_across_spines(self):
        net = leaf_spine(leaves=2, spines=4, hosts_per_leaf=2)
        net.build_routes(ecmp=True)
        got = []
        net.hosts["h1_0"].set_default_handler(got.append)
        for flow in range(40):
            net.hosts["h0_0"].send(
                Packet(src="h0_0", dst="h1_0", payload=b"x", flow_id=flow)
            )
        net.sim.run()
        assert len(got) == 40
        used = [
            s for s in ("spine0", "spine1", "spine2", "spine3")
            if net.switches[s].stats.forwarded > 0
        ]
        assert len(used) >= 3  # 40 flows hash across nearly all spines

    def test_same_flow_same_path(self):
        """Per-flow hashing keeps one flow on one spine (in-order)."""
        net = leaf_spine(leaves=2, spines=4, hosts_per_leaf=2)
        net.build_routes(ecmp=True)
        got = []
        net.hosts["h1_1"].set_default_handler(got.append)
        for _ in range(20):
            net.hosts["h0_1"].send(
                Packet(src="h0_1", dst="h1_1", payload=b"x", flow_id=7)
            )
        net.sim.run()
        used = [
            s for s in ("spine0", "spine1", "spine2", "spine3")
            if net.switches[s].stats.forwarded > 0
        ]
        assert len(used) == 1

    def test_set_route_validation(self):
        net = dumbbell(pairs=1)
        switch = net.switches["s0"]
        with pytest.raises(ValueError, match="no port"):
            switch.set_route("rx0", ["nonexistent"])
        with pytest.raises(ValueError, match="empty"):
            switch.set_route("rx0", [])

    def test_deterministic_across_runs(self):
        counts = []
        for _ in range(2):
            net = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2)
            net.build_routes(ecmp=True)
            for flow in range(16):
                net.hosts["h0_0"].send(
                    Packet(src="h0_0", dst="h1_0", flow_id=flow)
                )
            net.sim.run()
            counts.append(net.switches["spine0"].stats.forwarded)
        assert counts[0] == counts[1]


class TestQueueMonitor:
    def test_samples_queue_buildup(self):
        net = dumbbell(pairs=1, edge_rate_bps=10e9, bottleneck_rate_bps=1e9)
        monitor = QueueMonitor(net.sim, period_s=1e-6)
        monitor.watch("bottleneck", net.link_between("s0", "s1"))
        for _ in range(30):
            net.hosts["tx0"].send(
                Packet(src="tx0", dst="rx0", payload=b"\x00" * 1458)
            )
        net.sim.run()
        assert monitor.peak_bytes("bottleneck") > 10_000
        assert monitor.mean_bytes("bottleneck") > 0
        times = [s.time for s in monitor.samples["bottleneck"]]
        assert times == sorted(times)

    def test_monitor_does_not_prolong_simulation(self):
        net = dumbbell(pairs=1)
        monitor = QueueMonitor(net.sim, period_s=1e-6)
        monitor.watch("bottleneck", net.link_between("s0", "s1"))
        net.hosts["tx0"].send(Packet(src="tx0", dst="rx0"))
        end = net.sim.run()
        assert end < 1e-3  # stops when real traffic stops

    def test_time_above_threshold(self):
        net = dumbbell(pairs=1, edge_rate_bps=10e9, bottleneck_rate_bps=1e9)
        monitor = QueueMonitor(net.sim, period_s=1e-6)
        monitor.watch("b", net.link_between("s0", "s1"))
        for _ in range(30):
            net.hosts["tx0"].send(Packet(src="tx0", dst="rx0", payload=b"\x00" * 1458))
        net.sim.run()
        assert 0.0 < monitor.time_above("b", 5_000) <= 1.0
        assert monitor.time_above("b", 10**9) == 0.0

    def test_series_output(self):
        net = dumbbell(pairs=1)
        monitor = QueueMonitor(net.sim, period_s=1e-6)
        monitor.watch("b", net.link_between("s0", "s1"))
        net.hosts["tx0"].send(Packet(src="tx0", dst="rx0"))
        net.sim.run()
        series = monitor.series("b")
        assert all(len(point) == 2 for point in series)

    def test_duplicate_watch_rejected(self):
        net = dumbbell(pairs=1)
        monitor = QueueMonitor(net.sim)
        monitor.watch("b", net.link_between("s0", "s1"))
        with pytest.raises(ValueError, match="already watching"):
            monitor.watch("b", net.link_between("s1", "s0"))

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            QueueMonitor(Simulator(), period_s=0)
