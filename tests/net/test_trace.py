"""Tests for the per-packet event tracer."""

import numpy as np

from repro.core import SignMagnitudeCodec, packetize
from repro.net import PacketTracer, dumbbell
from repro.packet import Packet, SingleLevelTrim


def traced_network(trim=False, buffer_bytes=60_000):
    net = dumbbell(
        pairs=1,
        edge_rate_bps=100e9,
        bottleneck_rate_bps=1e9,
        trim_policy=SingleLevelTrim() if trim else None,
        buffer_bytes=buffer_bytes,
    )
    tracer = PacketTracer(net.sim)
    tracer.attach_host(net.hosts["tx0"])
    tracer.attach_host(net.hosts["rx0"])
    tracer.attach_switch(net.switches["s0"])
    tracer.attach_switch(net.switches["s1"])
    return net, tracer


class TestTracer:
    def test_send_and_deliver_recorded(self):
        net, tracer = traced_network()
        net.hosts["tx0"].send(Packet(src="tx0", dst="rx0", payload=b"hi", flow_id=9))
        net.sim.run()
        kinds = [e.kind for e in tracer.of_flow(9)]
        assert kinds[0] == "send"
        assert kinds[-1] == "deliver"
        assert kinds.count("forward") == 2  # s0 and s1

    def test_events_time_ordered(self):
        net, tracer = traced_network()
        for i in range(5):
            net.hosts["tx0"].send(Packet(src="tx0", dst="rx0", seq=i))
        net.sim.run()
        times = [e.time for e in tracer.events]
        assert times == sorted(times)

    def test_trim_events_recorded(self):
        net, tracer = traced_network(trim=True, buffer_bytes=5_000)
        enc = SignMagnitudeCodec().encode(
            np.random.default_rng(0).standard_normal(3000)
        )
        for pkt in packetize(enc, "tx0", "rx0", flow_id=2):
            net.hosts["tx0"].send(pkt)
        net.sim.run()
        trims = tracer.of_kind("trim")
        assert len(trims) > 0
        # A trimmed packet's history: send, maybe forward, then trim.
        history = tracer.packet_history(trims[0].packet_id)
        assert history[0].kind == "send"

    def test_drop_events_recorded(self):
        net, tracer = traced_network(trim=False, buffer_bytes=4_000)
        for _ in range(10):
            net.hosts["tx0"].send(
                Packet(src="tx0", dst="rx0", payload=b"\x00" * 1458)
            )
        net.sim.run()
        assert len(tracer.of_kind("drop")) > 0

    def test_render_is_readable(self):
        net, tracer = traced_network()
        net.hosts["tx0"].send(Packet(src="tx0", dst="rx0", flow_id=1))
        net.sim.run()
        text = tracer.render(limit=2)
        assert "send" in text
        assert "@tx0" in text

    def test_render_limit_note(self):
        net, tracer = traced_network()
        for i in range(8):
            net.hosts["tx0"].send(Packet(src="tx0", dst="rx0", seq=i))
        net.sim.run()
        text = tracer.render(limit=3)
        assert "more events" in text

    def test_attach_idempotent(self):
        net, tracer = traced_network()
        tracer.attach_host(net.hosts["tx0"])  # second attach is a no-op
        net.hosts["tx0"].send(Packet(src="tx0", dst="rx0"))
        net.sim.run()
        sends = tracer.of_kind("send")
        assert len(sends) == 1

    def test_max_events_cap(self):
        net, tracer = traced_network()
        tracer.max_events = 3
        for i in range(10):
            net.hosts["tx0"].send(Packet(src="tx0", dst="rx0", seq=i))
        net.sim.run()
        assert len(tracer.events) == 3
