"""Tests for the Section 5.3 adaptive-Q control loop."""

import numpy as np
import pytest

from repro.core import MultiLevelCodec, nmse
from repro.train import AdaptiveQController, BudgetedLinkChannel


def gradient(n=2**15, seed=0):
    return np.random.default_rng(seed).standard_normal(n)


class TestAdaptiveQController:
    def test_starts_at_full_depth(self):
        assert AdaptiveQController().send_bits == 32

    def test_heavy_trimming_steps_down(self):
        ctrl = AdaptiveQController()
        ctrl.update(0.9)
        assert ctrl.send_bits == 8
        ctrl.update(0.9)
        assert ctrl.send_bits == 1
        ctrl.update(0.9)  # already at the floor
        assert ctrl.send_bits == 1

    def test_calm_steps_up_after_patience(self):
        ctrl = AdaptiveQController(patience=2)
        ctrl.update(0.9)
        assert ctrl.send_bits == 8
        ctrl.update(0.0)
        assert ctrl.send_bits == 8  # one calm message is not enough
        ctrl.update(0.0)
        assert ctrl.send_bits == 32

    def test_target_band_holds_steady(self):
        """A small trim fraction is the desired operating point: the
        controller neither escalates nor de-escalates."""
        ctrl = AdaptiveQController(high_water=0.5, low_water=0.05)
        ctrl.update(0.9)
        for _ in range(10):
            ctrl.update(0.2)
        assert ctrl.send_bits == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveQController(levels=(1, 8, 32))


class TestBudgetedLinkChannel:
    def full_message_bytes(self, codec, x):
        packets = codec.packetize(codec.encode(x), "a", "b")
        return sum(p.wire_size for p in packets)

    def test_ample_capacity_is_lossless(self):
        codec = MultiLevelCodec(root_seed=1, row_size=4096)
        x = gradient()
        channel = BudgetedLinkChannel(codec, capacity_bytes=10**9)
        out = channel.transfer(x)
        assert nmse(x, out) < 1e-10
        assert channel.last_trim_fraction == 0.0

    def test_tight_capacity_triggers_jit_trimming(self):
        codec = MultiLevelCodec(root_seed=1, row_size=4096)
        x = gradient()
        full = self.full_message_bytes(codec, x)
        channel = BudgetedLinkChannel(codec, capacity_bytes=int(full * 0.6))
        out = channel.transfer(x)
        assert channel.last_trim_fraction > 0.0
        assert channel.stats.packets_trimmed > 0
        # Full-size packets hog the budget, so pure JIT reaction at a
        # tight budget degrades hard — the Section 5.3 motivation for
        # adjusting Q ahead of time (see the adaptive tests below).
        assert nmse(x, out) < 0.8

    def test_static_overcompression_wastes_capacity(self):
        """Static 1-bit sending never trims but leaves the link idle."""
        codec = MultiLevelCodec(root_seed=1, row_size=4096)
        x = gradient()
        full = self.full_message_bytes(codec, x)
        channel = BudgetedLinkChannel(
            codec, capacity_bytes=int(full * 0.6), static_send_bits=1
        )
        channel.transfer(x)
        utilization = channel.stats.bytes_sent / (full * 0.6)
        assert utilization < 0.2
        assert channel.last_trim_fraction == 0.0

    def test_adaptive_converges_to_fitting_depth(self):
        codec = MultiLevelCodec(root_seed=1, row_size=4096)
        x = gradient()
        full = self.full_message_bytes(codec, x)
        channel = BudgetedLinkChannel(
            codec,
            capacity_bytes=int(full * 0.35),
            controller=AdaptiveQController(),
        )
        outputs = [channel.transfer(x, message_id=m) for m in range(6)]
        # Converged: 8-bit ahead-of-time depth fits the 35% budget.
        assert channel.last_send_bits == 8
        assert channel.last_trim_fraction < 0.05
        assert nmse(x, outputs[-1]) < 1e-3

    def test_adaptive_beats_static_full_depth(self):
        """Relying on JIT alone at a tight budget loses packets; the
        ahead-of-time adjustment avoids that (the Section 5.3 pitch)."""
        codec = MultiLevelCodec(root_seed=1, row_size=4096)
        x = gradient()
        full = self.full_message_bytes(codec, x)
        budget = int(full * 0.35)

        static = BudgetedLinkChannel(codec, capacity_bytes=budget)
        adaptive = BudgetedLinkChannel(
            codec, capacity_bytes=budget, controller=AdaptiveQController()
        )
        for m in range(6):
            static_out = static.transfer(x, message_id=m)
            adaptive_out = adaptive.transfer(x, message_id=m)
        assert nmse(x, adaptive_out) < nmse(x, static_out)
        assert static.packets_dropped_total > 0

    def test_validation(self):
        codec = MultiLevelCodec(root_seed=1, row_size=1024)
        with pytest.raises(ValueError):
            BudgetedLinkChannel(codec, capacity_bytes=0)
        with pytest.raises(ValueError):
            BudgetedLinkChannel(codec, capacity_bytes=100, static_send_bits=7)
