"""Tests for the round-time cost model and the FSDP trainer."""

import numpy as np
import pytest

from repro.core import codec_by_name
from repro.nn import LogisticRegression, make_dataset
from repro.train import (
    FSDPTrainer,
    RoundTimeModel,
    TimingConfig,
    TrainConfig,
    TrimChannel,
    measure_codec_throughput,
)

MEASURED = {"sign": 8.0, "sq": 10.0, "sd": 12.0, "rht": 14.0}


def model_size_vgg19() -> int:
    return 20_000_000  # ~VGG-19 coordinate count


class TestRoundTimeModel:
    def test_baseline_has_no_encode_cost(self):
        tm = RoundTimeModel(TimingConfig(), MEASURED)
        rt = tm.round_time(model_size_vgg19(), codec_name=None)
        assert rt.encode_s == 0.0
        assert rt.compute_s > 0
        assert rt.comm_s > 0

    def test_encode_overhead_in_paper_range(self):
        """Scalar codec adds ~42-68% per round (Section 4.4)."""
        tm = RoundTimeModel(TimingConfig(), MEASURED)
        base = tm.round_time(model_size_vgg19()).total_s
        sq = tm.round_time(model_size_vgg19(), codec_name="sq").total_s
        overhead = sq / base - 1.0
        assert 0.2 < overhead < 0.8

    def test_rht_slower_than_scalar(self):
        tm = RoundTimeModel(TimingConfig(), MEASURED)
        sq = tm.round_time(model_size_vgg19(), codec_name="sq").total_s
        rht = tm.round_time(model_size_vgg19(), codec_name="rht").total_s
        assert rht > sq
        assert rht / sq < 1.6

    def test_trimming_reduces_comm(self):
        tm = RoundTimeModel(TimingConfig(), MEASURED)
        full = tm.round_time(model_size_vgg19(), codec_name="sq", trim_rate=0.0)
        trimmed = tm.round_time(model_size_vgg19(), codec_name="sq", trim_rate=0.5)
        assert trimmed.comm_s < full.comm_s

    def test_baseline_drop_slowdown_calibration(self):
        """Section 4.4: ~0.2% drops tolerable; 1-2% -> 5-10x slower."""
        tm = RoundTimeModel(TimingConfig(), MEASURED)
        d = model_size_vgg19()
        assert tm.baseline_slowdown(d, 0.002) < 2.0
        assert 3.0 < tm.baseline_slowdown(d, 0.01) < 12.0
        # 2% drops: the paper reports 5-10x "or start reporting timeout
        # errors" — the model lands in that timeout regime.
        assert 5.0 < tm.baseline_slowdown(d, 0.02) <= 30.0

    def test_world_size_scales_bytes(self):
        tm = RoundTimeModel(TimingConfig(), MEASURED)
        two = tm.round_time(10**7, world_size=2)
        eight = tm.round_time(10**7, world_size=8)
        assert eight.comm_s > two.comm_s

    def test_unknown_codec_rejected(self):
        tm = RoundTimeModel(TimingConfig(), MEASURED)
        with pytest.raises(KeyError):
            tm.round_time(1000, codec_name="zstd")

    def test_round_time_as_dict(self):
        tm = RoundTimeModel(TimingConfig(), MEASURED)
        d = tm.round_time(1000).as_dict()
        assert d["total_s"] == pytest.approx(d["compute_s"] + d["encode_s"] + d["comm_s"])


class TestMeasuredThroughput:
    def test_measurement_returns_positive_ns(self):
        table = measure_codec_throughput(num_coords=2**12, repeats=1)
        assert set(table) == {"sign", "sq", "sd", "rht"}
        assert all(v > 0 for v in table.values())

    def test_rht_costs_more_than_sign(self):
        table = measure_codec_throughput(num_coords=2**15, repeats=2)
        assert table["rht"] > table["sign"]


class TestFSDP:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_dataset(
            num_classes=6, train_per_class=16, test_per_class=8,
            image_size=8, noise=1.0, seed=0,
        )

    def test_perfect_channels_train(self, dataset):
        train, test = dataset
        model = LogisticRegression(192, 6, seed=0)
        cfg = TrainConfig(epochs=4, batch_size=8, lr=0.1, seed=0, augment=False)
        trainer = FSDPTrainer(model, train, test, world_size=2, config=cfg)
        history = trainer.train()
        assert history[-1]["train_loss"] < history[0]["train_loss"]
        assert history[-1]["top1"] > 1.0 / 6

    def test_trimmed_weight_gather_tolerated(self, dataset):
        """Section 5.5: imperfect gathered weights have limited impact."""
        train, test = dataset
        model = LogisticRegression(192, 6, seed=0)
        gather = TrimChannel(
            codec_by_name("rht", root_seed=1, row_size=1024), trim_rate=0.3, seed=4
        )
        cfg = TrainConfig(epochs=4, batch_size=8, lr=0.1, seed=0, augment=False)
        trainer = FSDPTrainer(
            model, train, test, world_size=2, gather_channel=gather, config=cfg
        )
        history = trainer.train()
        assert history[-1]["top1"] > 0.3
        assert gather.stats.packets_trimmed > 0

    def test_sharded_update_matches_ddp_math(self, dataset):
        """With perfect channels and no momentum, FSDP == plain SGD."""
        train, test = dataset
        cfg = TrainConfig(epochs=1, batch_size=8, lr=0.1, seed=0, augment=False)

        fsdp_model = LogisticRegression(192, 6, seed=3)
        trainer = FSDPTrainer(fsdp_model, train, test, world_size=2, config=cfg)
        batches = [next(iter(loader)) for loader in trainer.loaders]
        trainer._round(batches, epoch=1)

        from repro.nn import SGD, Tensor, cross_entropy

        solo = LogisticRegression(192, 6, seed=3)
        opt = SGD(solo.parameters(), lr=0.1, momentum=0.0)
        images = np.concatenate([b[0] for b in batches])
        labels = np.concatenate([b[1] for b in batches])
        solo.zero_grad()
        cross_entropy(solo(Tensor(images)), labels).backward()
        opt.step()
        assert np.allclose(fsdp_model.flat_parameters(), solo.flat_parameters(), atol=1e-10)
