"""Tests for the Bernoulli trim channel and the baseline drop channel."""

import numpy as np
import pytest

from repro.core import RHTCodec, codec_by_name, nmse
from repro.train import BaselineDropChannel, TrimChannel, TrimTranscript


def gradient(n=50_000, seed=0):
    return np.random.default_rng(seed).standard_normal(n)


class TestTrimChannel:
    def test_zero_rate_is_lossless(self):
        channel = TrimChannel(codec_by_name("sd", root_seed=1), trim_rate=0.0, seed=0)
        x = gradient()
        assert nmse(x, channel.transfer(x)) < 1e-12

    def test_full_rate_trims_everything(self):
        channel = TrimChannel(codec_by_name("sign"), trim_rate=1.0, seed=0)
        x = gradient(10_000)
        out = channel.transfer(x)
        assert np.allclose(np.abs(out), np.std(x))
        assert channel.stats.trim_fraction == 1.0

    def test_observed_trim_fraction_tracks_rate(self):
        channel = TrimChannel(codec_by_name("sq"), trim_rate=0.3, seed=1)
        for i in range(20):
            channel.transfer(gradient(20_000, seed=i), message_id=i)
        assert abs(channel.stats.trim_fraction - 0.3) < 0.05

    def test_deterministic_per_key(self):
        a = TrimChannel(codec_by_name("sd", root_seed=1), trim_rate=0.5, seed=9)
        b = TrimChannel(codec_by_name("sd", root_seed=1), trim_rate=0.5, seed=9)
        x = gradient()
        out_a = a.transfer(x, epoch=3, message_id=7, worker=1)
        out_b = b.transfer(x, epoch=3, message_id=7, worker=1)
        assert np.array_equal(out_a, out_b)

    def test_workers_get_independent_patterns(self):
        channel = TrimChannel(codec_by_name("sign"), trim_rate=0.5, seed=9)
        x = gradient()
        out0 = channel.transfer(x, epoch=1, message_id=1, worker=0)
        out1 = channel.transfer(x, epoch=1, message_id=1, worker=1)
        assert not np.array_equal(out0, out1)

    def test_bytes_saved_accounting(self):
        channel = TrimChannel(codec_by_name("rht", root_seed=0, row_size=1024),
                              trim_rate=0.5, seed=2)
        channel.transfer(gradient(30_000))
        stats = channel.stats
        assert stats.bytes_saved_by_trim > 0
        assert stats.bytes_sent + stats.bytes_saved_by_trim == pytest.approx(
            stats.packets_total * channel._full_packet_bytes
        )

    def test_timing_captured(self):
        channel = TrimChannel(codec_by_name("rht", root_seed=0, row_size=1024),
                              trim_rate=0.1, seed=0)
        channel.transfer(gradient(30_000))
        assert channel.stats.encode_seconds > 0
        assert channel.stats.decode_seconds > 0

    def test_rht_channel_error_scales_with_rate(self):
        x = gradient(2**16, seed=4)
        errors = []
        for rate in [0.1, 0.5, 1.0]:
            channel = TrimChannel(RHTCodec(root_seed=2, row_size=4096), rate, seed=5)
            errors.append(nmse(x, channel.transfer(x)))
        assert errors[0] < errors[1] < errors[2]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            TrimChannel(codec_by_name("sign"), trim_rate=1.5)


class TestTranscriptIntegration:
    def test_record_then_replay_reproduces_exactly(self):
        transcript = TrimTranscript()
        recorder = TrimChannel(
            codec_by_name("sd", root_seed=1), trim_rate=0.4, seed=3, record=transcript
        )
        outputs = []
        for epoch in range(2):
            for message in range(3):
                outputs.append(
                    recorder.transfer(
                        gradient(20_000, seed=epoch * 3 + message),
                        epoch=epoch,
                        message_id=message,
                        worker=0,
                    )
                )
        replayer = TrimChannel(
            codec_by_name("sd", root_seed=1), trim_rate=0.0, seed=999, replay=transcript
        )
        replayed = []
        for epoch in range(2):
            for message in range(3):
                replayed.append(
                    replayer.transfer(
                        gradient(20_000, seed=epoch * 3 + message),
                        epoch=epoch,
                        message_id=message,
                        worker=0,
                    )
                )
        for a, b in zip(outputs, replayed):
            assert np.array_equal(a, b)

    def test_replay_json_round_trip(self):
        transcript = TrimTranscript()
        channel = TrimChannel(
            codec_by_name("sign"), trim_rate=0.5, seed=1, record=transcript
        )
        channel.transfer(gradient(30_000), epoch=1, message_id=1, worker=2)
        restored = TrimTranscript.from_json(transcript.to_json())
        assert restored == transcript
        assert restored.total_trimmed() == transcript.total_trimmed()

    def test_replay_missing_key_raises(self):
        channel = TrimChannel(
            codec_by_name("sign"), trim_rate=0.0, seed=0, replay=TrimTranscript()
        )
        with pytest.raises(KeyError, match="no entry"):
            channel.transfer(gradient(1000), epoch=9, message_id=9, worker=9)

    def test_cannot_record_and_replay(self):
        transcript = TrimTranscript()
        with pytest.raises(ValueError, match="record and replay"):
            TrimChannel(
                codec_by_name("sign"), 0.5, record=transcript, replay=transcript
            )

    def test_duplicate_record_rejected(self):
        transcript = TrimTranscript()
        transcript.record(1, 1, 1, [0, 2])
        with pytest.raises(ValueError, match="already has"):
            transcript.record(1, 1, 1, [1])


class TestBaselineDropChannel:
    def test_always_bit_exact(self):
        channel = BaselineDropChannel(drop_rate=0.5, seed=0)
        x = gradient()
        assert np.array_equal(channel.transfer(x), x)

    def test_counts_drops(self):
        channel = BaselineDropChannel(drop_rate=0.1, seed=1)
        for i in range(10):
            channel.transfer(gradient(50_000, seed=i), message_id=i)
        fraction = channel.stats.packets_dropped / channel.stats.packets_total
        assert abs(fraction - 0.1) < 0.03

    def test_retransmissions_add_bytes(self):
        lossy = BaselineDropChannel(drop_rate=0.2, seed=1)
        clean = BaselineDropChannel(drop_rate=0.0, seed=1)
        x = gradient()
        lossy.transfer(x)
        clean.transfer(x)
        assert lossy.stats.bytes_sent > clean.stats.bytes_sent

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            BaselineDropChannel(drop_rate=-0.1)
