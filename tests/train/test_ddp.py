"""Integration tests for the DDP trainer."""

import numpy as np
import pytest

from repro.collectives import AllReduceHook
from repro.core import codec_by_name
from repro.nn import (
    SGD,
    LogisticRegression,
    MLP,
    Tensor,
    cross_entropy,
    make_dataset,
)
from repro.train import (
    DDPTrainer,
    RoundTimeModel,
    TimingConfig,
    TrainConfig,
    TrimChannel,
    shard_dataset,
)


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(
        num_classes=8, train_per_class=16, test_per_class=8, image_size=8, noise=1.0, seed=0
    )


class TestShardDataset:
    def test_shards_partition(self, dataset):
        train, _ = dataset
        shards = shard_dataset(train, 4)
        assert sum(len(s) for s in shards) == len(train)
        assert all(abs(len(s) - len(train) / 4) <= 1 for s in shards)

    def test_invalid_world(self, dataset):
        train, _ = dataset
        with pytest.raises(ValueError):
            shard_dataset(train, 0)


class TestDDPEquivalence:
    def test_ddp_step_equals_large_batch_step(self, dataset):
        """One DDP round over W workers == one step on the union batch."""
        train, test = dataset
        cfg = TrainConfig(epochs=1, batch_size=8, lr=0.1, seed=0, augment=False)

        ddp_model = MLP(192, [16], 8, seed=3)
        trainer = DDPTrainer(ddp_model, train, test, world_size=2, config=cfg)
        batches = [next(iter(loader)) for loader in trainer.loaders]
        trainer._round(batches, epoch=1)

        solo_model = MLP(192, [16], 8, seed=3)
        opt = SGD(solo_model.parameters(), lr=0.1, momentum=cfg.momentum)
        images = np.concatenate([b[0] for b in batches])
        labels = np.concatenate([b[1] for b in batches])
        solo_model.zero_grad()
        # Mean of per-worker mean losses == loss over the union batch
        # (equal shard sizes), so gradients match exactly.
        cross_entropy(solo_model(Tensor(images)), labels).backward()
        opt.step()

        assert np.allclose(
            ddp_model.flat_parameters(), solo_model.flat_parameters(), atol=1e-10
        )

    def test_training_reduces_loss(self, dataset):
        train, test = dataset
        model = LogisticRegression(192, 8, seed=0)
        cfg = TrainConfig(epochs=4, batch_size=8, lr=0.1, seed=0, augment=False)
        history = DDPTrainer(model, train, test, world_size=2, config=cfg).train()
        assert history.records[-1].train_loss < history.records[0].train_loss
        assert history.final_top1 > 1.0 / 8

    def test_trimmed_training_still_learns(self, dataset):
        train, test = dataset
        model = LogisticRegression(192, 8, seed=0)
        hook = AllReduceHook(
            TrimChannel(codec_by_name("rht", root_seed=1, row_size=1024), 0.5, seed=2)
        )
        cfg = TrainConfig(epochs=4, batch_size=8, lr=0.1, seed=0, augment=False)
        history = DDPTrainer(model, train, test, world_size=2, hook=hook, config=cfg).train()
        assert history.final_top1 > 0.3
        assert 0.3 < history.records[-1].trim_fraction < 0.7

    def test_deterministic_runs(self, dataset):
        train, test = dataset
        results = []
        for _ in range(2):
            model = LogisticRegression(192, 8, seed=0)
            hook = AllReduceHook(
                TrimChannel(codec_by_name("sd", root_seed=1), 0.3, seed=7)
            )
            cfg = TrainConfig(epochs=2, batch_size=8, lr=0.05, seed=0, augment=False)
            history = DDPTrainer(
                model, train, test, world_size=2, hook=hook, config=cfg
            ).train()
            results.append(model.flat_parameters())
        assert np.array_equal(results[0], results[1])


class TestHistoryQueries:
    def test_wall_clock_accumulates(self, dataset):
        train, test = dataset
        model = LogisticRegression(192, 8, seed=0)
        tm = RoundTimeModel(
            TimingConfig(), codec_ns_per_coord={"sq": 10.0, "rht": 15.0, "sign": 9.0, "sd": 11.0}
        )
        cfg = TrainConfig(epochs=3, batch_size=8, lr=0.05, seed=0, augment=False)
        history = DDPTrainer(
            model, train, test, world_size=2, config=cfg, time_model=tm
        ).train()
        times = [r.wall_clock_s for r in history.records]
        assert times[0] > 0
        assert times == sorted(times)

    def test_time_to_accuracy(self, dataset):
        train, test = dataset
        model = LogisticRegression(192, 8, seed=0)
        tm = RoundTimeModel(
            TimingConfig(), codec_ns_per_coord={"sq": 10.0}
        )
        cfg = TrainConfig(epochs=5, batch_size=8, lr=0.1, seed=0, augment=False)
        history = DDPTrainer(
            model, train, test, world_size=2, config=cfg, time_model=tm
        ).train()
        reachable = history.time_to_accuracy(history.best_top1)
        assert reachable is not None
        assert history.time_to_accuracy(1.01) is None

    def test_accuracy_curve_shape(self, dataset):
        train, test = dataset
        model = LogisticRegression(192, 8, seed=0)
        cfg = TrainConfig(epochs=2, batch_size=8, lr=0.05, seed=0, augment=False)
        history = DDPTrainer(model, train, test, world_size=2, config=cfg).train()
        curve = history.accuracy_curve()
        assert len(curve) == 2
        assert all(len(point) == 2 for point in curve)

    def test_divergence_detection(self, dataset):
        train, test = dataset
        model = LogisticRegression(192, 8, seed=0)
        cfg = TrainConfig(epochs=3, batch_size=8, lr=0.05, seed=0, augment=False)
        trainer = DDPTrainer(
            model, train, test, world_size=2, config=cfg, divergence_loss=1e-9
        )
        history = trainer.train()
        assert history.diverged
        assert len(history.records) == 1  # stopped at the first bad epoch
