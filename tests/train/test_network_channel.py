"""End-to-end: DDP training whose gradients cross the packet simulator."""

import numpy as np
import pytest

from repro.collectives import AllReduceHook
from repro.core import RHTCodec, nmse
from repro.net import IncastBurst, dumbbell
from repro.nn import make_dataset
from repro.packet import SingleLevelTrim
from repro.train import DDPTrainer, NetworkChannel, TrainConfig


def clean_network():
    return dumbbell(pairs=1)


def congested_network():
    """Shallow trimming switches + an incast colliding with the gradient."""
    net = dumbbell(
        pairs=3,
        edge_rate_bps=10e9,
        bottleneck_rate_bps=10e9,
        trim_policy=SingleLevelTrim(),
        buffer_bytes=25_000,
    )
    burst = IncastBurst(
        net.sim,
        senders=[net.hosts["tx1"], net.hosts["tx2"]],
        dst="rx1",
        burst_bytes=150_000,
        seed=2,
    )
    burst.fire(at=0.0)
    return net


class TestNetworkChannelTransfer:
    def test_clean_network_lossless(self):
        codec = RHTCodec(root_seed=1, row_size=4096)
        channel = NetworkChannel(clean_network, codec, "tx0", "rx0")
        x = np.random.default_rng(0).standard_normal(30_000)
        out = channel.transfer(x, epoch=1, message_id=1)
        assert nmse(x, out) < 1e-12
        assert channel.last_trim_fraction == 0.0
        assert len(channel.fcts) == 1

    def test_congested_network_trims_but_delivers(self):
        codec = RHTCodec(root_seed=1, row_size=4096)
        channel = NetworkChannel(congested_network, codec, "tx0", "rx0")
        x = np.random.default_rng(1).standard_normal(60_000)
        out = channel.transfer(x, epoch=1, message_id=1)
        assert channel.last_trim_fraction > 0.0
        assert channel.stats.packets_trimmed > 0
        assert nmse(x, out) < 0.6  # trimmed coords decoded, not lost

    def test_deadline_enforced(self):
        codec = RHTCodec(root_seed=1, row_size=1024)

        def dead_network():
            net = dumbbell(pairs=1)
            net.set_impairment("s0", "s1", drop_prob=1.0)  # nothing arrives
            return net

        channel = NetworkChannel(dead_network, codec, "tx0", "rx0", deadline_s=0.01)
        with pytest.raises(RuntimeError, match="deadline"):
            channel.transfer(np.ones(5000))

    def test_fct_accounting(self):
        codec = RHTCodec(root_seed=1, row_size=1024)
        channel = NetworkChannel(clean_network, codec, "tx0", "rx0")
        for m in range(3):
            channel.transfer(np.random.default_rng(m).standard_normal(5000),
                             message_id=m)
        assert len(channel.fcts) == 3
        assert channel.mean_fct > 0


class TestTrainingOverSimulatedNetwork:
    def test_ddp_trains_through_the_packet_simulator(self):
        """The capstone integration: a full DDP run whose every gradient
        message is packetized, switched, trimmed, and decoded."""
        from repro.nn import MLP

        train, test = make_dataset(
            num_classes=6, train_per_class=10, test_per_class=6,
            image_size=8, noise=1.0, seed=0,
        )
        codec = RHTCodec(root_seed=3, row_size=1024)
        channel = NetworkChannel(congested_network, codec, "tx0", "rx0")
        # Big enough that one gradient message (~50 kB) itself overflows
        # the 25 kB switch buffer on top of the incast.
        model = MLP(192, [64], 6, seed=0)
        cfg = TrainConfig(epochs=2, batch_size=10, lr=0.1, seed=0, augment=False)
        trainer = DDPTrainer(
            model, train, test, world_size=2,
            hook=AllReduceHook(channel), config=cfg,
        )
        history = trainer.train()
        assert history.records[-1].train_loss < history.records[0].train_loss + 0.5
        assert channel.stats.messages == 2 * 2 * len(trainer.loaders[0])
        assert channel.stats.packets_trimmed > 0  # congestion really hit
