"""Regression: surrendered rounds vs SGD momentum.

A ``NetworkChannel(degraded_step=True)`` surrender hands the trainer an
all-zero gradient.  Classical momentum then still moves the parameters
(``v <- mu*v; p <- p - lr*v``) — the optimizer keeps coasting on stale
velocity through an outage.  ``freeze_momentum_on_surrender`` pins the
alternative: skip the optimizer step entirely, freezing parameters AND
velocity for the lost round.  Both behaviors are pinned here so neither
changes silently.
"""

import numpy as np

from repro.collectives import AllReduceHook, PerfectChannel
from repro.collectives.channel import GradientChannel
from repro.core import RHTCodec
from repro.faults import FaultInjector, FaultSpec, Scenario
from repro.net import dumbbell
from repro.nn.data import make_dataset
from repro.nn.models import MLP
from repro.train import DDPTrainer, NetworkChannel, TrainConfig


class AlwaysSurrenderChannel(GradientChannel):
    """Minimal degraded-step channel: every round is a surrender."""

    def transfer(self, flat, *, epoch=0, message_id=0, worker=0):
        flat = np.asarray(flat, dtype=np.float64)
        self.stats.messages += 1
        self.count_surrender()
        return np.zeros_like(flat)


def corrupting_network_channel():
    """The real thing: a NetworkChannel whose wire corrupts every data
    packet, so the transport surrenders and degrades the step."""

    def factory():
        net = dumbbell(pairs=1)
        scenario = Scenario(
            name="wire-corruptor",
            description="every data packet corrupted",
            faults=(FaultSpec("corrupt", "s0->s1", rate=1.0),),
        )
        FaultInjector(net, scenario, root_seed=0).install()
        return net

    return NetworkChannel(
        factory,
        RHTCodec(root_seed=1, row_size=1024),
        src="tx0",
        dst="rx0",
        deadline_s=5.0,
        degraded_step=True,
        max_retries=4,
    )


def trainer(channel, freeze, seed=0):
    train_set, test_set = make_dataset(
        num_classes=3, train_per_class=4, test_per_class=2, image_size=6, seed=seed
    )
    return DDPTrainer(
        MLP(108, [4], 3, seed=seed + 3),
        train_set,
        test_set,
        world_size=2,
        hook=AllReduceHook(channel),
        config=TrainConfig(
            epochs=1,
            batch_size=3,
            lr=0.1,
            momentum=0.9,
            seed=seed,
            freeze_momentum_on_surrender=freeze,
        ),
        label="momentum-surrender",
    )


def prime_velocity(t, value=0.01):
    for v in t.optimizer._velocity:
        v[...] = value


class TestDefaultBehavior:
    def test_zero_gradient_still_decays_velocity_and_moves_params(self):
        t = trainer(AlwaysSurrenderChannel(), freeze=False)
        prime_velocity(t)
        params_before = t.model.flat_parameters()
        t.train(max_rounds=1)
        # v <- mu*v + 0; p <- p - lr*v
        for v in t.optimizer._velocity:
            assert np.allclose(v, 0.009)
        expected = params_before - 0.1 * 0.009
        assert np.allclose(t.model.flat_parameters(), expected)


class TestFrozenBehavior:
    def test_flag_freezes_params_and_velocity(self):
        t = trainer(AlwaysSurrenderChannel(), freeze=True)
        prime_velocity(t)
        params_before = t.model.flat_parameters()
        t.train(max_rounds=1)
        for v in t.optimizer._velocity:
            assert np.allclose(v, 0.01)  # untouched
        assert np.array_equal(t.model.flat_parameters(), params_before)

    def test_freeze_only_when_round_fully_lost(self):
        """A normal round (no surrender) must still step under the flag."""
        t = trainer(AlwaysSurrenderChannel(), freeze=True)
        t.hook.channel = PerfectChannel()
        prime_velocity(t)
        params_before = t.model.flat_parameters()
        t.train(max_rounds=1)
        assert not np.array_equal(t.model.flat_parameters(), params_before)


class TestThroughRealNetworkChannel:
    def test_both_behaviors_through_transport_surrender(self):
        results = {}
        for freeze in (False, True):
            t = trainer(corrupting_network_channel(), freeze=freeze)
            prime_velocity(t)
            params_before = t.model.flat_parameters()
            t.train(max_rounds=1)
            assert t.hook.stats.rounds_surrendered == t.world_size
            results[freeze] = (
                params_before,
                t.model.flat_parameters(),
                [v.copy() for v in t.optimizer._velocity],
            )
        before, after, velocity = results[True]
        assert np.array_equal(after, before)
        assert all(np.allclose(v, 0.01) for v in velocity)
        before, after, velocity = results[False]
        assert np.allclose(after, before - 0.1 * 0.009)
        assert all(np.allclose(v, 0.009) for v in velocity)
