"""Training through the ring all-reduce hook (error compounds per hop)."""

import numpy as np
import pytest

from repro.collectives import RingAllReduceHook
from repro.core import RHTCodec
from repro.nn import LogisticRegression, make_dataset
from repro.train import DDPTrainer, TrainConfig, TrimChannel


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(
        num_classes=6, train_per_class=16, test_per_class=8,
        image_size=8, noise=1.0, seed=0,
    )


class TestRingTraining:
    def test_ring_hook_equals_direct_hook_with_perfect_channel(self, dataset):
        from repro.collectives import AllReduceHook

        train, test = dataset
        cfg = TrainConfig(epochs=2, batch_size=8, lr=0.1, seed=0, augment=False)
        models = []
        for hook_cls in (AllReduceHook, RingAllReduceHook):
            model = LogisticRegression(192, 6, seed=4)
            DDPTrainer(
                model, train, test, world_size=3, hook=hook_cls(), config=cfg
            ).train()
            models.append(model.flat_parameters())
        assert np.allclose(models[0], models[1], atol=1e-9)

    def test_ring_with_trimming_still_learns(self, dataset):
        train, test = dataset
        hook = RingAllReduceHook(
            TrimChannel(RHTCodec(root_seed=1, row_size=1024), trim_rate=0.2, seed=2)
        )
        model = LogisticRegression(192, 6, seed=4)
        cfg = TrainConfig(epochs=4, batch_size=8, lr=0.1, seed=0, augment=False)
        history = DDPTrainer(
            model, train, test, world_size=3, hook=hook, config=cfg
        ).train()
        assert history.final_top1 > 0.3
        assert hook.stats.packets_trimmed > 0

    def test_ring_crosses_channel_per_hop(self, dataset):
        train, test = dataset
        channel = TrimChannel(RHTCodec(root_seed=1, row_size=1024), 0.0, seed=0)
        hook = RingAllReduceHook(channel)
        model = LogisticRegression(192, 6, seed=4)
        cfg = TrainConfig(epochs=1, batch_size=8, lr=0.1, seed=0, augment=False)
        trainer = DDPTrainer(
            model, train, test, world_size=4, hook=hook, config=cfg
        )
        trainer.train()
        rounds = trainer._rounds_run
        # 2 * (N-1) * N channel crossings per round for N = 4.
        assert channel.stats.messages == rounds * 24
