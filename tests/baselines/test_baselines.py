"""Tests for the ahead-of-time compression baselines."""

import numpy as np
import pytest

from repro.baselines import (
    PowerSGDChannel,
    PowerSGDCompressor,
    SparsifiedTrimmableChannel,
    TernGradChannel,
    TernGradCompressor,
    TopKChannel,
    topk_sparsify,
)


def gradient(n=20_000, seed=0):
    return np.random.default_rng(seed).standard_normal(n)


class TestTernGrad:
    def test_codes_are_ternary(self):
        enc = TernGradCompressor(root_seed=1).encode(gradient())
        assert set(np.unique(enc.codes)) <= {-1, 0, 1}

    def test_unbiased_for_clipped_inputs(self):
        rng = np.random.default_rng(2)
        x = np.clip(rng.standard_normal(300_000), -2.4, 2.4)
        compressor = TernGradCompressor(root_seed=3)
        decoded = compressor.decode(compressor.encode(x))
        assert abs(decoded.mean() - x.mean()) < 0.02

    def test_zero_gradient(self):
        compressor = TernGradCompressor()
        decoded = compressor.decode(compressor.encode(np.zeros(100)))
        assert np.allclose(decoded, 0.0)

    def test_channel_counts_compressed_bytes(self):
        channel = TernGradChannel(root_seed=0)
        x = gradient()
        channel.transfer(x)
        # 2 bits/coordinate << 32 bits/coordinate.
        assert channel.stats.bytes_sent < x.size

    def test_sign_preserved(self):
        compressor = TernGradCompressor(root_seed=1)
        x = gradient()
        decoded = compressor.decode(compressor.encode(x))
        nonzero = decoded != 0
        assert np.all(np.sign(decoded[nonzero]) == np.sign(np.clip(x, -1, 1)[nonzero]))


class TestTopK:
    def test_keeps_largest(self):
        x = np.array([0.1, -5.0, 0.2, 3.0, -0.05])
        indices, values = topk_sparsify(x, 0.4)
        assert set(indices) == {1, 3}
        assert np.allclose(np.sort(np.abs(values)), [3.0, 5.0])

    def test_keep_all(self):
        x = gradient(100)
        indices, values = topk_sparsify(x, 1.0)
        assert np.array_equal(values, x)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            topk_sparsify(gradient(10), 0.0)

    def test_channel_delivers_sparse(self):
        channel = TopKChannel(keep_fraction=0.2, error_feedback=False)
        out = channel.transfer(gradient())
        assert np.count_nonzero(out) == pytest.approx(0.2 * 20_000, rel=0.01)

    def test_error_feedback_recovers_dropped_mass(self):
        """With EF, repeated transfers of the same gradient eventually
        deliver the full mass; without EF the small coords never ship."""
        x = gradient(1000, seed=5)
        with_ef = TopKChannel(keep_fraction=0.1, error_feedback=True)
        total = np.zeros_like(x)
        for _ in range(30):
            total += with_ef.transfer(x, worker=0)
        # Average delivered mass approaches the true gradient.
        assert np.linalg.norm(total / 30 - x) / np.linalg.norm(x) < 0.5

    def test_per_worker_residuals_independent(self):
        channel = TopKChannel(keep_fraction=0.1)
        a = channel.transfer(gradient(1000, seed=1), worker=0)
        b = channel.transfer(gradient(1000, seed=2), worker=1)
        assert not np.array_equal(a, b)


class TestPowerSGD:
    def test_rank_controls_error(self):
        rng = np.random.default_rng(0)
        # A matrix with decaying spectrum compresses well at low rank.
        u = rng.standard_normal((64, 8))
        v = rng.standard_normal((8, 64))
        matrix = u @ np.diag([10, 5, 2, 1, 0.5, 0.2, 0.1, 0.05])[:8, :8] @ v
        errors = []
        for rank in [1, 4, 8]:
            compressor = PowerSGDCompressor(rank=rank, seed=1, error_feedback=False)
            decoded = compressor.decode(compressor.encode(matrix))
            errors.append(np.linalg.norm(decoded - matrix) / np.linalg.norm(matrix))
        assert errors[0] > errors[1] > errors[2]

    def test_warm_start_improves_over_rounds(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((32, 4)) @ rng.standard_normal((4, 32))
        compressor = PowerSGDCompressor(rank=4, seed=0, error_feedback=False)
        first = compressor.decode(compressor.encode(matrix, key=("m",)))
        for _ in range(5):
            last = compressor.decode(compressor.encode(matrix, key=("m",)))
        err_first = np.linalg.norm(first - matrix)
        err_last = np.linalg.norm(last - matrix)
        assert err_last <= err_first + 1e-9

    def test_rank_ordered_payload_prefix_decode(self):
        """Section 5.3: trimming the payload tail removes the weakest
        ranks, so a prefix decode degrades gracefully."""
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((32, 6)) @ np.diag([8, 4, 2, 1, 0.5, 0.1]) @ \
            rng.standard_normal((6, 32))
        compressor = PowerSGDCompressor(rank=6, seed=0, error_feedback=False)
        enc = compressor.encode(matrix)
        payload = compressor.rank_ordered_payload(enc)
        errors = []
        for ranks in [1, 3, 6]:
            approx = compressor.decode_prefix(payload, enc.shape, ranks)
            errors.append(np.linalg.norm(approx - matrix))
        assert errors[0] > errors[1] > errors[2]
        full = compressor.decode(enc)
        assert np.allclose(compressor.decode_prefix(payload, enc.shape, 6), full)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            PowerSGDCompressor(rank=2).encode(np.zeros(10))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            PowerSGDCompressor(rank=0)

    def test_channel_flat_round_trip_shape(self):
        channel = PowerSGDChannel(rank=4, seed=0)
        x = gradient(12345)
        out = channel.transfer(x)
        assert out.shape == x.shape
        assert channel.stats.bytes_sent < x.size * 4  # compressed


class TestSparsifiedTrimmable:
    def test_combined_channel_delivers(self):
        channel = SparsifiedTrimmableChannel(keep_fraction=0.3, trim_rate=0.3, seed=1)
        x = gradient(30_000, seed=3)
        out = channel.transfer(x, epoch=1, message_id=1)
        assert out.shape == x.shape
        # Survivors approximate their true values despite trimming.
        mask = out != 0
        assert mask.sum() > 0
        err = np.linalg.norm(out[mask] - x[mask]) / np.linalg.norm(x[mask])
        assert err < 1.0

    def test_no_trim_equals_topk(self):
        x = gradient(10_000, seed=4)
        combined = SparsifiedTrimmableChannel(keep_fraction=0.2, trim_rate=0.0, seed=1)
        plain = TopKChannel(keep_fraction=0.2)
        out_c = combined.transfer(x)
        out_p = plain.transfer(x)
        assert np.allclose(np.flatnonzero(out_c), np.flatnonzero(out_p))
        assert np.allclose(out_c, out_p, atol=1e-6)
