"""Integration tests: transports over the simulated dumbbell network."""

import numpy as np
import pytest

from repro.core import RHTCodec, decode_packets, nmse, packetize
from repro.net import FlowLog, dumbbell
from repro.packet import SingleLevelTrim
from repro.transport import (
    AIMD,
    FixedWindow,
    GoBackNReceiver,
    GoBackNSender,
    RttEstimator,
    TrimmingReceiver,
    TrimmingSender,
    segment_bytes,
)


def run_gbn(drop=0.0, num_bytes=500_000, rto_min=1e-3, until=5.0):
    net = dumbbell(pairs=1)
    net.set_impairment("s0", "s1", drop_prob=drop)
    log = FlowLog()
    sender = GoBackNSender(
        net.hosts["tx0"], flow_id=1, cc=AIMD(initial_window=32), log=log, rto_min=rto_min
    )
    messages = []
    GoBackNReceiver(net.hosts["rx0"], flow_id=1, on_message=messages.append)
    sender.send_message(segment_bytes("tx0", "rx0", num_bytes, flow_id=1))
    net.sim.run(until=until)
    return sender, messages, log


class TestSegmentBytes:
    def test_framing(self):
        packets = segment_bytes("a", "b", 5000, flow_id=3)
        assert [p.seq for p in packets] == list(range(len(packets)))
        assert all(p.seq_total == len(packets) for p in packets)
        assert sum(len(p.payload) for p in packets) == 5000

    def test_respects_mtu(self):
        for pkt in segment_bytes("a", "b", 100_000, flow_id=1, mtu=576):
            assert pkt.wire_size <= 576

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            segment_bytes("a", "b", 0, flow_id=1)


class TestRttEstimator:
    def test_first_sample_initializes(self):
        est = RttEstimator(rto_min=1e-6)
        est.sample(100e-6)
        assert est.srtt == pytest.approx(100e-6)
        assert est.rto >= 100e-6

    def test_rto_floor_and_cap(self):
        est = RttEstimator(rto_min=1e-3, rto_max=10e-3)
        est.sample(1e-6)
        assert est.rto == 1e-3
        for _ in range(20):
            est.backoff()
        assert est.rto == 10e-3

    def test_backoff_resets_on_sample(self):
        est = RttEstimator(rto_min=1e-3, rto_max=100e-3)
        est.sample(1e-3)
        est.backoff()
        est.backoff()
        widened = est.rto
        est.sample(1e-3)
        assert est.rto < widened


class TestGoBackN:
    def test_lossless_delivery(self):
        sender, messages, log = run_gbn(drop=0.0)
        assert sender.done
        assert len(messages) == 1
        assert log.total_retransmissions() == 0
        assert sum(len(p.payload) for p in messages[0]) == 500_000

    def test_in_order_delivery(self):
        _, messages, _ = run_gbn(drop=0.0)
        seqs = [p.seq for p in messages[0]]
        assert seqs == sorted(seqs)

    def test_loss_triggers_retransmission(self):
        sender, messages, log = run_gbn(drop=0.01)
        assert sender.done
        assert len(messages) == 1
        assert log.total_retransmissions() > 0

    def test_fct_degrades_sharply_with_loss(self):
        """The Section 4.4 baseline behaviour: a few percent of drops
        multiply the completion time."""
        _, _, log_clean = run_gbn(drop=0.0)
        _, _, log_lossy = run_gbn(drop=0.02)
        assert log_lossy.max_fct() > 5 * log_clean.max_fct()

    def test_rejects_concurrent_messages(self):
        net = dumbbell(pairs=1)
        sender = GoBackNSender(net.hosts["tx0"], flow_id=1)
        sender.send_message(segment_bytes("tx0", "rx0", 10_000, flow_id=1))
        with pytest.raises(RuntimeError, match="already in flight"):
            sender.send_message(segment_bytes("tx0", "rx0", 10_000, flow_id=1))

    def test_rejects_empty_message(self):
        net = dumbbell(pairs=1)
        sender = GoBackNSender(net.hosts["tx0"], flow_id=1)
        with pytest.raises(ValueError):
            sender.send_message([])

    def test_trimmed_arrivals_treated_as_loss(self):
        net = dumbbell(pairs=1)
        net.set_impairment("s0", "s1", trim_prob=0.5)
        log = FlowLog()
        sender = GoBackNSender(
            net.hosts["tx0"], flow_id=1, cc=AIMD(initial_window=16), log=log, rto_min=1e-4
        )
        receiver = GoBackNReceiver(net.hosts["rx0"], flow_id=1)
        enc = RHTCodec(root_seed=0, row_size=1024).encode(
            np.random.default_rng(0).standard_normal(20000)
        )
        sender.send_message(packetize(enc, "tx0", "rx0", flow_id=1))
        net.sim.run(until=5.0)
        assert sender.done
        assert receiver.trimmed_rejected > 0
        assert log.total_retransmissions() > 0


class TestTrimmingTransport:
    def test_lossless_delivery_decodes(self):
        net = dumbbell(pairs=1)
        x = np.random.default_rng(1).standard_normal(50_000)
        codec = RHTCodec(root_seed=4, row_size=4096)
        enc = codec.encode(x)
        sender = TrimmingSender(net.hosts["tx0"], flow_id=2, cc=FixedWindow(64))
        messages = []
        TrimmingReceiver(net.hosts["rx0"], flow_id=2, on_message=messages.append)
        sender.send_message(packetize(enc, "tx0", "rx0", flow_id=2))
        net.sim.run(until=5.0)
        assert sender.done
        decoded = decode_packets(messages[0], codec)
        assert nmse(x, decoded) < 1e-12

    def test_trims_complete_without_retransmission(self):
        """The paper's core transport property: trims are deliveries."""
        net = dumbbell(pairs=1)
        net.set_impairment("s0", "s1", trim_prob=0.5)
        x = np.random.default_rng(2).standard_normal(50_000)
        codec = RHTCodec(root_seed=4, row_size=4096)
        log = FlowLog()
        sender = TrimmingSender(
            net.hosts["tx0"], flow_id=2, cc=FixedWindow(64), log=log
        )
        messages = []
        TrimmingReceiver(net.hosts["rx0"], flow_id=2, on_message=messages.append)
        sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=2))
        net.sim.run(until=5.0)
        assert sender.done
        assert log.total_retransmissions() == 0
        assert log.total_trimmed() > 0
        decoded = decode_packets(messages[0], codec)
        assert nmse(x, decoded) < 0.6

    def test_fct_stays_flat_under_trimming(self):
        """Unlike go-back-N under drops, trimming keeps FCT near clean."""
        fcts = {}
        for trim in [0.0, 0.5]:
            net = dumbbell(pairs=1)
            net.set_impairment("s0", "s1", trim_prob=trim)
            x = np.random.default_rng(3).standard_normal(100_000)
            codec = RHTCodec(root_seed=1, row_size=4096)
            log = FlowLog()
            sender = TrimmingSender(
                net.hosts["tx0"], flow_id=2, cc=FixedWindow(64), log=log
            )
            TrimmingReceiver(net.hosts["rx0"], flow_id=2)
            sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=2))
            net.sim.run(until=5.0)
            fcts[trim] = log.max_fct()
        assert fcts[0.5] < fcts[0.0] * 1.5

    def test_switch_trimming_end_to_end(self):
        """Overload a shallow trim-enabled switch buffer: the message still
        completes with zero drops and the decode succeeds."""
        net = dumbbell(
            pairs=1,
            edge_rate_bps=10e9,
            bottleneck_rate_bps=1e9,
            trim_policy=SingleLevelTrim(),
            buffer_bytes=20_000,
        )
        x = np.random.default_rng(5).standard_normal(100_000)
        codec = RHTCodec(root_seed=9, row_size=4096)
        log = FlowLog()
        sender = TrimmingSender(
            net.hosts["tx0"], flow_id=7, cc=FixedWindow(256), log=log
        )
        messages = []
        TrimmingReceiver(net.hosts["rx0"], flow_id=7, on_message=messages.append)
        sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=7))
        net.sim.run(until=5.0)
        assert sender.done
        stats = net.total_switch_stats()
        assert stats["trimmed"] > 0
        decoded = decode_packets(messages[0], codec)
        assert nmse(x, decoded) < 0.6

    def test_full_drop_recovered_by_timer(self):
        net = dumbbell(pairs=1)
        net.set_impairment("s0", "s1", drop_prob=0.05)
        x = np.random.default_rng(6).standard_normal(20_000)
        codec = RHTCodec(root_seed=2, row_size=1024)
        log = FlowLog()
        sender = TrimmingSender(
            net.hosts["tx0"], flow_id=3, cc=FixedWindow(32), log=log, rto_min=1e-4
        )
        messages = []
        TrimmingReceiver(net.hosts["rx0"], flow_id=3, on_message=messages.append)
        sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=3))
        net.sim.run(until=5.0)
        assert sender.done
        assert log.total_retransmissions() > 0
        assert nmse(x, decode_packets(messages[0], codec)) < 1e-12
