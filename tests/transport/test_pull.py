"""Tests for the NDP-style receiver-driven pull transport."""

import numpy as np
import pytest

from repro.core import RHTCodec, decode_packets, nmse, packetize
from repro.net import FlowLog, dumbbell
from repro.packet import SingleLevelTrim
from repro.transport import PullReceiver, PullSender, segment_bytes


def wire_pull(net, flow_id=1, log=None, initial_window=12, rto_min=1e-4):
    messages = []
    sender = PullSender(
        net.hosts["tx0"], flow_id=flow_id, log=log,
        initial_window=initial_window, rto_min=rto_min,
    )
    receiver = PullReceiver(
        net.hosts["rx0"], flow_id=flow_id, on_message=messages.append
    )
    return sender, receiver, messages


class TestCleanPath:
    def test_delivers_and_orders(self):
        net = dumbbell(pairs=1)
        sender, receiver, messages = wire_pull(net)
        packets = segment_bytes("tx0", "rx0", 200_000, flow_id=1)
        sender.send_message(packets)
        net.sim.run(until=5.0)
        assert sender.done
        assert [p.seq for p in messages[0]] == list(range(len(packets)))

    def test_receiver_clocks_the_flow(self):
        """Beyond the initial window, every send is credit-driven."""
        net = dumbbell(pairs=1)
        sender, receiver, _ = wire_pull(net, initial_window=4)
        packets = segment_bytes("tx0", "rx0", 100_000, flow_id=1)
        sender.send_message(packets)
        net.sim.run(until=5.0)
        assert sender.done
        assert receiver.pulls_sent >= len(packets)
        assert sender.credits_received >= len(packets) - 4

    def test_initial_window_burst_only(self):
        net = dumbbell(pairs=1)
        sender, _, _ = wire_pull(net, initial_window=4)
        packets = segment_bytes("tx0", "rx0", 100_000, flow_id=1)
        sender.send_message(packets)
        # Before any credit returns, exactly the initial window is out.
        assert net.hosts["tx0"].packets_sent == 4

    def test_validation(self):
        net = dumbbell(pairs=1)
        with pytest.raises(ValueError, match="initial window"):
            PullSender(net.hosts["tx0"], flow_id=1, initial_window=0)


class TestImpairedPath:
    def test_trimmed_gradients_accepted_no_retransmit(self):
        net = dumbbell(pairs=1)
        net.set_impairment("s0", "s1", trim_prob=0.5)
        log = FlowLog()
        sender, receiver, messages = wire_pull(net, log=log)
        codec = RHTCodec(root_seed=2, row_size=2048)
        x = np.random.default_rng(0).standard_normal(50_000)
        sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=1))
        net.sim.run(until=5.0)
        assert sender.done
        assert log.total_retransmissions() == 0
        assert receiver.trimmed_accepted > 0
        assert nmse(x, decode_packets(messages[0], codec)) < 0.6

    def test_trimmed_packets_nacked_when_receiver_is_trim_oblivious(self):
        """Ablation: a receiver that cannot use trimmed payloads turns
        every trimmed header into a NACK; the retry loop converges
        because trimming is probabilistic per transmission."""
        net = dumbbell(pairs=1)
        net.set_impairment("s0", "s1", trim_prob=0.3)
        log = FlowLog()
        codec = RHTCodec(root_seed=2, row_size=2048)
        x = np.random.default_rng(1).standard_normal(50_000)
        messages = []
        sender = PullSender(
            net.hosts["tx0"], flow_id=1, log=log, initial_window=32
        )
        receiver = PullReceiver(
            net.hosts["rx0"], flow_id=1, on_message=messages.append,
            accept_trimmed=False,
        )
        sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=1))
        net.sim.run(until=10.0)
        assert sender.done
        assert receiver.nacks_sent > 0
        assert log.total_retransmissions() > 0
        # Everything eventually arrives at full precision.
        assert nmse(x, decode_packets(messages[0], codec)) < 1e-12

    def test_full_drops_recovered_by_backstop_timer(self):
        net = dumbbell(pairs=1)
        net.set_impairment("s0", "s1", drop_prob=0.08)
        log = FlowLog()
        sender, receiver, messages = wire_pull(net, log=log, rto_min=1e-4)
        codec = RHTCodec(root_seed=3, row_size=1024)
        x = np.random.default_rng(2).standard_normal(20_000)
        sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=1))
        net.sim.run(until=20.0)
        assert sender.done
        assert log.total_retransmissions() > 0
        assert nmse(x, decode_packets(messages[0], codec)) < 1e-12

    def test_pull_through_trimming_switch_completes_fast(self):
        """NDP end-to-end: shallow trimming switch + pull pacing."""
        net = dumbbell(
            pairs=1,
            edge_rate_bps=100e9,
            bottleneck_rate_bps=10e9,
            trim_policy=SingleLevelTrim(),
            buffer_bytes=20_000,
        )
        log = FlowLog()
        sender, receiver, messages = wire_pull(net, log=log, initial_window=64)
        codec = RHTCodec(root_seed=4, row_size=4096)
        x = np.random.default_rng(3).standard_normal(100_000)
        sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=1))
        net.sim.run(until=10.0)
        assert sender.done
        assert log.total_retransmissions() == 0
        assert net.total_switch_stats()["trimmed"] > 0
        assert nmse(x, decode_packets(messages[0], codec)) < 0.6
