"""Seeded transport invariants under every fault preset.

The contract this suite enforces, for every preset × transport pair:

* **terminal state** — every flow either completes or surrenders
  explicitly; nothing is left in limbo (no deadlock);
* **bounded work** — the run finishes within a simulator-step budget
  (no livelock);
* **exactly-once delivery** — ``on_message`` fires at most once per
  flow, and a delivered message contains every sequence number exactly
  once, in order.
"""

import pytest

from repro.faults import PRESETS, run_scenario
from repro.faults.harness import TRANSPORTS

#: Generous step budget: the heaviest preset (incast, 4 pairs) finishes
#: well under this; a livelocked retransmit storm blows straight past it.
STEP_BOUND = 400_000

CASES = [
    (preset, transport)
    for preset in sorted(PRESETS)
    for transport in TRANSPORTS
]


@pytest.fixture(scope="module")
def runs():
    """One shared run per (preset, transport): the suite asserts many
    invariants on each, and the simulations dominate the runtime."""
    return {
        (preset, transport): run_scenario(
            PRESETS[preset], transport=transport, seed=7, max_events=STEP_BOUND
        )
        for preset, transport in CASES
    }


@pytest.mark.parametrize("preset,transport", CASES)
class TestFaultInvariants:
    def test_every_flow_reaches_terminal_state(self, runs, preset, transport):
        run = runs[(preset, transport)]
        for flow, sender in run.senders.items():
            assert sender.done or sender.failed, (
                f"{preset}/{transport}: flow {flow} neither completed nor "
                f"surrendered (livelock/deadlock)"
            )

    def test_step_bound(self, runs, preset, transport):
        run = runs[(preset, transport)]
        assert run.steps < STEP_BOUND

    def test_no_duplicate_delivery(self, runs, preset, transport):
        run = runs[(preset, transport)]
        for flow, calls in run.delivery_calls.items():
            assert calls == 1, f"{preset}/{transport}: flow {flow} delivered {calls}x"

    def test_delivered_messages_are_in_order_and_complete(
        self, runs, preset, transport
    ):
        run = runs[(preset, transport)]
        for flow, packets in run.deliveries.items():
            seqs = [p.seq for p in packets]
            assert seqs == sorted(seqs), f"{preset}/{transport}: out of order"
            assert len(set(seqs)) == len(seqs), f"{preset}/{transport}: dup seq"
            assert len(seqs) == packets[0].seq_total

    def test_surrender_is_explicit_and_mutual(self, runs, preset, transport):
        """A surrendered flow reports a reason and never also delivers."""
        run = runs[(preset, transport)]
        for flow, reason in run.surrenders.items():
            assert reason
            assert run.senders[flow].failed
            assert flow not in run.deliveries

    def test_faults_were_actually_injected(self, runs, preset, transport):
        run = runs[(preset, transport)]
        assert sum(run.fault_counts.values()) > 0, (
            f"{preset}/{transport}: scenario ran but injected nothing"
        )

    def test_completed_flows_decode(self, runs, preset, transport):
        """Whatever survived the faults decodes to a finite gradient
        with bounded error — corrupted packets never reach the codec."""
        run = runs[(preset, transport)]
        for flow in run.deliveries:
            assert flow in run.decode_nmse
            assert run.decode_nmse[flow] < 1.0


def test_all_presets_complete_on_clean_transports():
    """Sanity anchor: with faults present but mild (flaky-link), every
    transport still fully delivers — surrender is the exception path,
    not the common case."""
    run = run_scenario(PRESETS["flaky-link"], transport="gbn", seed=3)
    assert run.completed_flows == run.flows
    assert not run.surrenders
