"""Tests for congestion controllers."""

import pytest

from repro.transport import AIMD, DCTCP, FixedWindow


class TestFixedWindow:
    def test_never_moves(self):
        cc = FixedWindow(initial_window=16)
        for _ in range(100):
            cc.on_ack()
        cc.on_loss()
        cc.on_trim()
        assert cc.window == 16

    def test_initial_validation(self):
        with pytest.raises(ValueError):
            FixedWindow(initial_window=0)


class TestAIMD:
    def test_additive_increase(self):
        cc = AIMD(initial_window=10)
        before = cc.cwnd
        cc.on_ack()
        assert cc.cwnd == pytest.approx(before + 1 / before)

    def test_full_window_of_acks_adds_about_one(self):
        cc = AIMD(initial_window=10)
        for _ in range(10):
            cc.on_ack()
        assert 10.9 < cc.cwnd < 11.1

    def test_loss_halves(self):
        cc = AIMD(initial_window=64)
        cc.on_loss()
        assert cc.cwnd == 32

    def test_ecn_halves(self):
        cc = AIMD(initial_window=64)
        cc.on_ack(ecn=True)
        assert cc.cwnd == 32

    def test_trim_is_gentler_than_loss(self):
        loss = AIMD(initial_window=64)
        trim = AIMD(initial_window=64)
        loss.on_loss()
        trim.on_trim()
        assert trim.cwnd > loss.cwnd

    def test_floor_at_one(self):
        cc = AIMD(initial_window=1.5)
        for _ in range(20):
            cc.on_loss()
        assert cc.window == 1

    def test_ceiling(self):
        cc = AIMD(initial_window=10, max_window=12)
        for _ in range(1000):
            cc.on_ack()
        assert cc.cwnd <= 12


class TestDCTCP:
    def test_no_marks_grows_like_aimd(self):
        cc = DCTCP(initial_window=10)
        for _ in range(10):
            cc.on_ack(ecn=False)
        assert cc.cwnd > 10
        assert cc.alpha == 0.0

    def test_all_marked_converges_to_halving(self):
        cc = DCTCP(initial_window=100, gain=1.0)
        for _ in range(100):
            cc.on_ack(ecn=True)
        # alpha -> 1, each epoch multiplies by 1 - 1/2.
        assert cc.alpha == pytest.approx(1.0)
        assert cc.cwnd < 100

    def test_sparse_marks_small_decrease(self):
        heavy = DCTCP(initial_window=100, gain=1.0)
        light = DCTCP(initial_window=100, gain=1.0)
        for i in range(200):
            heavy.on_ack(ecn=True)
            light.on_ack(ecn=(i % 20 == 0))
        assert light.cwnd > heavy.cwnd

    def test_trim_counts_as_mark(self):
        cc = DCTCP(initial_window=4, gain=1.0)
        for _ in range(8):
            cc.on_trim()
        assert cc.alpha > 0.5

    def test_loss_halves(self):
        cc = DCTCP(initial_window=40)
        cc.on_loss()
        assert cc.cwnd == 20

    def test_window_floor(self):
        cc = DCTCP(initial_window=1)
        for _ in range(50):
            cc.on_loss()
        assert cc.window == 1
