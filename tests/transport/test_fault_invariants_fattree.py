"""The fault invariant matrix on a multipath fabric with a tenant.

Same contract as ``test_fault_invariants.py`` — terminal state, bounded
work, exactly-once in-order delivery — but every preset × transport pair
now runs on an ECMP-routed k=4 fat-tree while one background tenant
(pod 2 -> pod 1) loads the fabric.  Faults land on the remapped targets
along the ECMP path pair 0 actually hashes to.

Marked ``cluster``: tier-1 skips this file (see pyproject addopts); the
CI chaos job runs it with ``-m cluster``.
"""

import pytest

from repro.faults import PRESETS, run_scenario
from repro.faults.harness import BACKGROUND_FLOW, TRANSPORTS

pytestmark = pytest.mark.cluster

#: Fat-tree runs carry tenant traffic on top of scenario flows: roughly
#: 60k steps each observed; a livelock blows straight past this.
STEP_BOUND = 400_000

CASES = [
    (preset, transport)
    for preset in sorted(PRESETS)
    for transport in TRANSPORTS
]


@pytest.fixture(scope="module")
def runs():
    return {
        (preset, transport): run_scenario(
            PRESETS[preset],
            transport=transport,
            seed=7,
            max_events=STEP_BOUND,
            topology="fat-tree",
            background_traffic=True,
        )
        for preset, transport in CASES
    }


@pytest.mark.parametrize("preset,transport", CASES)
class TestFatTreeFaultInvariants:
    def test_every_flow_reaches_terminal_state(self, runs, preset, transport):
        run = runs[(preset, transport)]
        for flow, sender in run.senders.items():
            assert sender.done or sender.failed, (
                f"{preset}/{transport}: flow {flow} neither completed nor "
                f"surrendered (livelock/deadlock)"
            )

    def test_step_bound(self, runs, preset, transport):
        run = runs[(preset, transport)]
        assert run.steps < STEP_BOUND

    def test_no_duplicate_delivery(self, runs, preset, transport):
        run = runs[(preset, transport)]
        for flow, calls in run.delivery_calls.items():
            assert calls == 1, f"{preset}/{transport}: flow {flow} delivered {calls}x"

    def test_delivered_messages_are_in_order_and_complete(
        self, runs, preset, transport
    ):
        run = runs[(preset, transport)]
        for flow, packets in run.deliveries.items():
            seqs = [p.seq for p in packets]
            assert seqs == sorted(seqs), f"{preset}/{transport}: out of order"
            assert len(set(seqs)) == len(seqs), f"{preset}/{transport}: dup seq"
            assert len(seqs) == packets[0].seq_total

    def test_surrender_is_explicit_and_mutual(self, runs, preset, transport):
        run = runs[(preset, transport)]
        for flow, reason in run.surrenders.items():
            assert reason
            assert run.senders[flow].failed
            assert flow not in run.deliveries

    def test_faults_were_actually_injected(self, runs, preset, transport):
        run = runs[(preset, transport)]
        assert sum(run.fault_counts.values()) > 0, (
            f"{preset}/{transport}: scenario ran but injected nothing"
        )

    def test_fault_targets_live_on_the_fabric(self, runs, preset, transport):
        """Remapped targets name real fat-tree devices, not dumbbell ones."""
        run = runs[(preset, transport)]
        for event in run.events:
            target = event["target"]
            if target.startswith("worker:"):
                continue
            if target.startswith("switch:"):
                # Device-scoped target: the part after the role prefix
                # must be a live switch.
                assert target.split(":", 1)[1] in run.network.switches
                continue
            for part in target.replace("->", ":").split(":"):
                assert part in run.network.hosts or part in run.network.switches

    def test_completed_flows_decode(self, runs, preset, transport):
        run = runs[(preset, transport)]
        for flow in run.deliveries:
            assert flow in run.decode_nmse
            assert run.decode_nmse[flow] < 1.0

    def test_background_tenant_actually_ran(self, runs, preset, transport):
        """The tenant's packets reached hosts (silently counted)."""
        run = runs[(preset, transport)]
        assert BACKGROUND_FLOW not in run.deliveries
        assert BACKGROUND_FLOW not in run.senders


def test_fat_tree_run_is_deterministic():
    run_a = run_scenario(
        PRESETS["flaky-link"], transport="trimming", seed=11,
        topology="fat-tree", background_traffic=True,
    )
    run_b = run_scenario(
        PRESETS["flaky-link"], transport="trimming", seed=11,
        topology="fat-tree", background_traffic=True,
    )
    assert run_a.summary() == run_b.summary()
    assert run_a.events == run_b.events


def test_dumbbell_rejects_background_traffic():
    with pytest.raises(ValueError, match="background_traffic"):
        run_scenario(PRESETS["flaky-link"], topology="dumbbell", background_traffic=True)


def test_unknown_topology_rejected():
    with pytest.raises(ValueError, match="unknown topology"):
        run_scenario(PRESETS["flaky-link"], topology="torus")
