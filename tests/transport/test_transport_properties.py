"""Property-based tests: transports under arbitrary impairment.

Hypothesis drives random loss/trim probabilities and message sizes; the
invariants are delivery (every transport eventually completes under
partial loss) and conservation (a switch never invents or silently
destroys packets beyond its counted drops).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RHTCodec, decode_packets, nmse, packetize
from repro.net import FlowLog, dumbbell
from repro.packet import SingleLevelTrim
from repro.transport import (
    AIMD,
    FixedWindow,
    GoBackNReceiver,
    GoBackNSender,
    TrimmingReceiver,
    TrimmingSender,
    segment_bytes,
)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    drop=st.floats(min_value=0.0, max_value=0.15),
    kilobytes=st.integers(min_value=10, max_value=300),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_gbn_always_delivers_in_order(drop, kilobytes, seed):
    """Go-back-N delivers the complete message, in order, at any loss
    rate it can survive (RTO backstop), with no duplicates delivered."""
    net = dumbbell(pairs=1)
    net.set_impairment("s0", "s1", drop_prob=drop)
    net.link_between("s0", "s1")._rng = np.random.default_rng(seed)
    sender = GoBackNSender(
        net.hosts["tx0"], flow_id=1, cc=AIMD(initial_window=16), rto_min=1e-4
    )
    messages = []
    GoBackNReceiver(net.hosts["rx0"], flow_id=1, on_message=messages.append)
    packets = segment_bytes("tx0", "rx0", kilobytes * 1000, flow_id=1)
    sender.send_message(packets)
    net.sim.run(until=60.0)
    assert sender.done
    assert len(messages) == 1
    seqs = [p.seq for p in messages[0]]
    assert seqs == list(range(len(packets)))


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    trim=st.floats(min_value=0.0, max_value=1.0),
    coords=st.integers(min_value=1000, max_value=60_000),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_trimming_transport_completes_without_retransmission(trim, coords, seed):
    """At ANY trim probability the trimming transport completes with
    zero retransmissions and the decode error stays under the DRIVE
    full-trim bound."""
    net = dumbbell(pairs=1)
    net.set_impairment("s0", "s1", trim_prob=trim)
    net.link_between("s0", "s1")._rng = np.random.default_rng(seed)
    log = FlowLog()
    codec = RHTCodec(root_seed=seed % 1000, row_size=2048)
    x = np.random.default_rng(seed).standard_normal(coords)
    sender = TrimmingSender(net.hosts["tx0"], flow_id=2, cc=FixedWindow(64), log=log)
    messages = []
    TrimmingReceiver(net.hosts["rx0"], flow_id=2, on_message=messages.append)
    sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=2))
    net.sim.run(until=60.0)
    assert sender.done
    assert log.total_retransmissions() == 0
    decoded = decode_packets(messages[0], codec)
    assert nmse(x, decoded) <= (np.pi / 2 - 1) + 0.3


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    burst_packets=st.integers(min_value=5, max_value=120),
    buffer_kb=st.integers(min_value=5, max_value=60),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_switch_conservation_invariant(burst_packets, buffer_kb, seed):
    """forwarded + trimmed + dropped == packets offered, and every
    packet the receiver sees was accounted as forwarded or trimmed."""
    net = dumbbell(
        pairs=1,
        edge_rate_bps=100e9,
        bottleneck_rate_bps=1e9,
        trim_policy=SingleLevelTrim(),
        buffer_bytes=buffer_kb * 1000,
    )
    codec = RHTCodec(root_seed=1, row_size=1024)
    x = np.random.default_rng(seed).standard_normal(burst_packets * 364)
    packets = packetize(codec.encode(x), "tx0", "rx0", flow_id=3)
    got = []
    net.hosts["rx0"].set_default_handler(got.append)
    for pkt in packets:
        net.hosts["tx0"].send(pkt)
    net.sim.run()
    s0 = net.switches["s0"].stats
    s1 = net.switches["s1"].stats
    # s0 sees every offered packet exactly once.
    assert s0.forwarded + s0.trimmed + s0.dropped == len(packets)
    # s1 sees exactly what s0 let through.
    assert s1.forwarded + s1.trimmed + s1.dropped == s0.forwarded + s0.trimmed
    # The receiver gets exactly what s1 let through.
    assert len(got) == s1.forwarded + s1.trimmed


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    drop=st.floats(min_value=0.0, max_value=0.1),
    trim=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_trimming_transport_survives_mixed_impairment(drop, trim, seed):
    """Drops + trims together: timer recovers drops, trims are kept."""
    net = dumbbell(pairs=1)
    net.set_impairment("s0", "s1", drop_prob=drop, trim_prob=trim)
    net.link_between("s0", "s1")._rng = np.random.default_rng(seed)
    codec = RHTCodec(root_seed=5, row_size=1024)
    x = np.random.default_rng(seed + 1).standard_normal(20_000)
    sender = TrimmingSender(
        net.hosts["tx0"], flow_id=4, cc=FixedWindow(32), rto_min=1e-4
    )
    messages = []
    TrimmingReceiver(net.hosts["rx0"], flow_id=4, on_message=messages.append)
    sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=4))
    net.sim.run(until=60.0)
    assert sender.done
    decoded = decode_packets(messages[0], codec)
    assert np.all(np.isfinite(decoded))


# -- RttEstimator properties --------------------------------------------------

_rtt_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("sample"),
            st.floats(min_value=1e-7, max_value=10.0, allow_nan=False),
        ),
        st.tuples(st.just("backoff"), st.just(0.0)),
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(
    rto_min=st.floats(min_value=1e-6, max_value=1e-2),
    spread=st.floats(min_value=2.0, max_value=1e4),
    ops=_rtt_ops,
)
def test_rto_always_within_configured_bounds(rto_min, spread, ops):
    """No sample/backoff sequence can push rto outside [rto_min, rto_max]."""
    from repro.transport import RttEstimator

    est = RttEstimator(rto_min=rto_min, rto_max=rto_min * spread)
    assert est.rto_min <= est.rto <= est.rto_max
    for op, value in ops:
        if op == "sample":
            est.sample(value)
        else:
            est.backoff()
        assert est.rto_min <= est.rto <= est.rto_max


@settings(max_examples=200, deadline=None)
@given(
    rtt=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    expiries=st.integers(min_value=1, max_value=12),
)
def test_backoff_monotone_until_next_sample(rtt, expiries):
    """Consecutive expiries never shorten the timeout; only a fresh
    sample may bring it back down."""
    from repro.transport import RttEstimator

    est = RttEstimator()
    est.sample(rtt)
    timeline = [est.rto]
    for _ in range(expiries):
        est.backoff()
        timeline.append(est.rto)
    assert timeline == sorted(timeline)
    assert timeline[-1] <= est.rto_max


@settings(max_examples=200, deadline=None)
@given(
    rtt=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    expiries=st.integers(min_value=1, max_value=12),
    fresh=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
)
def test_fresh_sample_resets_backoff_multiplier(rtt, expiries, fresh):
    """A successful measurement cancels the exponential penalty: the rto
    right after sample() is the un-backed-off estimate."""
    from repro.transport import RttEstimator

    est = RttEstimator()
    est.sample(rtt)
    for _ in range(expiries):
        est.backoff()
    est.sample(fresh)
    assert est.srtt is not None and est.rttvar is not None
    unbacked = min(est.rto_max, max(est.rto_min, est.srtt + 4 * est.rttvar))
    assert est.rto == unbacked
