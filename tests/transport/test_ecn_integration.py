"""End-to-end ECN: marking switches + DCTCP senders keep queues short."""

from repro.net import FlowLog, QueueMonitor, dumbbell
from repro.transport import (
    AIMD,
    DCTCP,
    FixedWindow,
    GoBackNReceiver,
    GoBackNSender,
    segment_bytes,
)

ECN_THRESHOLD = 15_000
BUFFER = 120_000


def run_transfer(cc, num_bytes=400_000, until=10.0):
    net = dumbbell(
        pairs=1,
        edge_rate_bps=10e9,
        bottleneck_rate_bps=1e9,
        buffer_bytes=BUFFER,
        ecn_threshold_bytes=ECN_THRESHOLD,
    )
    monitor = QueueMonitor(net.sim, period_s=5e-6)
    monitor.watch("bottleneck", net.link_between("s0", "s1"))
    log = FlowLog()
    sender = GoBackNSender(net.hosts["tx0"], flow_id=1, cc=cc, log=log, rto_min=1e-3)
    GoBackNReceiver(net.hosts["rx0"], flow_id=1)
    sender.send_message(segment_bytes("tx0", "rx0", num_bytes, flow_id=1))
    net.sim.run(until=until)
    return sender, monitor, log, net


class TestEcnEndToEnd:
    def test_marks_are_applied_and_echoed(self):
        sender, monitor, log, net = run_transfer(DCTCP(initial_window=64))
        assert sender.done
        data_band = net.link_between("s0", "s1").queue.data_band()
        assert data_band.ecn_marked > 0
        # The sender's DCTCP alpha saw the echoes.
        assert sender.cc.alpha > 0.0

    def test_dctcp_keeps_queue_near_threshold(self):
        """DCTCP's proportional decrease holds the queue near the marking
        threshold; an oblivious fixed window fills the whole buffer.
        Uses a longer flow — DCTCP needs a few windows to converge."""
        _, monitor_dctcp, _, _ = run_transfer(
            DCTCP(initial_window=64), num_bytes=2_000_000
        )
        _, monitor_fixed, _, _ = run_transfer(
            FixedWindow(initial_window=96), num_bytes=2_000_000
        )
        dctcp_mean = monitor_dctcp.mean_bytes("bottleneck")
        fixed_mean = monitor_fixed.mean_bytes("bottleneck")
        assert dctcp_mean < fixed_mean * 0.6
        assert monitor_dctcp.peak_bytes("bottleneck") < BUFFER * 0.9

    def test_dctcp_avoids_drops_fixed_window_may_not(self):
        _, _, log_dctcp, net_dctcp = run_transfer(DCTCP(initial_window=64))
        _, _, log_fixed, net_fixed = run_transfer(FixedWindow(initial_window=256), until=3.0)
        assert net_dctcp.total_switch_stats()["dropped"] == 0
        assert log_dctcp.total_retransmissions() == 0
        # The oversized fixed window overruns the buffer.
        assert (
            net_fixed.total_switch_stats()["dropped"] > 0
            or log_fixed.total_retransmissions() > 0
        )

    def test_aimd_with_ecn_also_converges(self):
        sender, monitor, log, net = run_transfer(AIMD(initial_window=64))
        assert sender.done
        assert net.total_switch_stats()["dropped"] == 0
        assert monitor.peak_bytes("bottleneck") < BUFFER
