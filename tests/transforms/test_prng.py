"""Tests for shared-randomness streams (sender/receiver agreement)."""

import numpy as np
import pytest

from repro.transforms import StreamKey, derive_seed, purposes, shared_generator


class TestSharedGenerator:
    def test_same_key_same_stream(self):
        a = shared_generator(42, epoch=3, message_id=7, purpose="dither")
        b = shared_generator(42, epoch=3, message_id=7, purpose="dither")
        assert np.array_equal(a.random(100), b.random(100))

    def test_different_epochs_differ(self):
        a = shared_generator(42, epoch=1).random(50)
        b = shared_generator(42, epoch=2).random(50)
        assert not np.array_equal(a, b)

    def test_different_message_ids_differ(self):
        a = shared_generator(42, message_id=1).random(50)
        b = shared_generator(42, message_id=2).random(50)
        assert not np.array_equal(a, b)

    def test_different_purposes_differ(self):
        a = shared_generator(42, purpose="dither").random(50)
        b = shared_generator(42, purpose="rotation").random(50)
        assert not np.array_equal(a, b)

    def test_different_root_seeds_differ(self):
        a = shared_generator(1).random(50)
        b = shared_generator(2).random(50)
        assert not np.array_equal(a, b)

    def test_unknown_purpose_rejected(self):
        with pytest.raises(ValueError, match="unknown purpose"):
            shared_generator(0, purpose="nonsense")

    def test_purposes_listing(self):
        names = purposes()
        assert "dither" in names
        assert "rotation" in names
        assert names == sorted(names)


class TestStreamKey:
    def test_key_is_hashable_and_frozen(self):
        key = StreamKey(1, 2, 3, "rotation")
        assert hash(key) == hash(StreamKey(1, 2, 3, "rotation"))
        with pytest.raises(AttributeError):
            key.epoch = 9  # type: ignore[misc]

    def test_spawn_matches_shared_generator(self):
        key = StreamKey(9, 4, 5, "quantize")
        a = key.spawn().random(20)
        b = shared_generator(9, 4, 5, "quantize").random(20)
        assert np.array_equal(a, b)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_sensitive_to_every_field(self):
        base = derive_seed(1, 2, 3, "rotation")
        assert base != derive_seed(2, 2, 3, "rotation")
        assert base != derive_seed(1, 3, 3, "rotation")
        assert base != derive_seed(1, 2, 4, "rotation")
        assert base != derive_seed(1, 2, 3, "dither")

    def test_in_63_bit_range(self):
        for i in range(20):
            seed = derive_seed(i, i + 1, i + 2)
            assert 0 <= seed < 2**63
