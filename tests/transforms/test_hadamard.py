"""Unit and property tests for the fast Walsh-Hadamard transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import fwht, fwht_inplace, hadamard_matrix, is_power_of_two, next_power_of_two


class TestPowerOfTwoHelpers:
    def test_is_power_of_two_accepts_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_is_power_of_two_rejects_non_powers(self):
        for n in [0, -1, -4, 3, 5, 6, 7, 9, 12, 100]:
            assert not is_power_of_two(n)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(17) == 32
        assert next_power_of_two(1024) == 1024

    def test_next_power_of_two_rejects_non_positive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)
        with pytest.raises(ValueError):
            next_power_of_two(-5)


class TestFwht:
    def test_matches_dense_matrix(self):
        rng = np.random.default_rng(0)
        for d in [1, 2, 4, 8, 16, 64]:
            x = rng.standard_normal(d)
            assert np.allclose(fwht(x), hadamard_matrix(d) @ x)

    def test_involution(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(256)
        assert np.allclose(fwht(fwht(x)), x)

    def test_preserves_norm(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(512)
        assert np.isclose(np.linalg.norm(fwht(x)), np.linalg.norm(x))

    def test_batched_rows_match_individual(self):
        rng = np.random.default_rng(3)
        batch = rng.standard_normal((5, 64))
        together = fwht(batch)
        for i in range(5):
            assert np.allclose(together[i], fwht(batch[i]))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fwht(np.zeros(3))
        with pytest.raises(ValueError):
            fwht(np.zeros((2, 6)))

    def test_inplace_modifies_and_returns_same_array(self):
        x = np.ones(8)
        out = fwht_inplace(x)
        assert out is x
        # H @ ones concentrates everything in the first coefficient.
        assert np.isclose(x[0], np.sqrt(8))
        assert np.allclose(x[1:], 0)

    def test_integer_input_promoted(self):
        assert fwht(np.array([1, 1, 1, 1])).dtype == np.float64

    def test_linearity(self):
        rng = np.random.default_rng(4)
        x, y = rng.standard_normal((2, 128))
        assert np.allclose(fwht(2.0 * x + 3.0 * y), 2.0 * fwht(x) + 3.0 * fwht(y))

    def test_hadamard_matrix_is_orthonormal(self):
        for d in [1, 2, 8, 32]:
            h = hadamard_matrix(d)
            assert np.allclose(h @ h.T, np.eye(d))

    def test_hadamard_matrix_rejects_non_power(self):
        with pytest.raises(ValueError):
            hadamard_matrix(12)


@settings(max_examples=40)
@given(
    log_d=st.integers(min_value=0, max_value=9),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fwht_involution_property(log_d, seed):
    """fwht is its own inverse for any power-of-two length."""
    x = np.random.default_rng(seed).standard_normal(1 << log_d)
    assert np.allclose(fwht(fwht(x)), x, atol=1e-9)


@settings(max_examples=40)
@given(
    log_d=st.integers(min_value=0, max_value=9),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fwht_preserves_inner_products(log_d, seed):
    """Orthonormality: <Hx, Hy> == <x, y>."""
    rng = np.random.default_rng(seed)
    x, y = rng.standard_normal((2, 1 << log_d))
    assert np.isclose(np.dot(fwht(x), fwht(y)), np.dot(x, y), atol=1e-8)
