"""Tests for the randomized Hadamard rotation layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import irht, random_signs, rht, rotate_rows, unrotate_rows


class TestRandomSigns:
    def test_deterministic(self):
        assert np.array_equal(random_signs(64, 5), random_signs(64, 5))

    def test_values_are_plus_minus_one(self):
        signs = random_signs(1000, 7)
        assert set(np.unique(signs)) <= {-1.0, 1.0}

    def test_roughly_balanced(self):
        signs = random_signs(10000, 11)
        assert abs(signs.mean()) < 0.05

    def test_seed_changes_signs(self):
        assert not np.array_equal(random_signs(128, 1), random_signs(128, 2))


class TestRhtInverse:
    def test_irht_inverts_rht(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(256)
        assert np.allclose(irht(rht(x, seed=9), seed=9), x)

    def test_wrong_seed_does_not_invert(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(256)
        assert not np.allclose(irht(rht(x, seed=9), seed=10), x)

    def test_norm_preserved(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(128)
        assert np.isclose(np.linalg.norm(rht(x, 3)), np.linalg.norm(x))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            rht(np.zeros(10), 0)
        with pytest.raises(ValueError):
            irht(np.zeros(10), 0)

    def test_gaussianizes_spiky_input(self):
        """A 1-sparse vector becomes dense and symmetric after RHT."""
        x = np.zeros(1024)
        x[17] = 100.0
        r = rht(x, seed=3)
        # Every rotated coordinate has the same magnitude for 1-sparse input.
        assert np.allclose(np.abs(r), 100.0 / np.sqrt(1024))
        assert abs(np.mean(np.sign(r))) < 0.2


class TestRotateRows:
    def test_round_trip_exact_multiple(self):
        rng = np.random.default_rng(3)
        flat = rng.standard_normal(64 * 4)
        rotated = rotate_rows(flat, row_size=64, seed=1)
        assert rotated.rows.shape == (4, 64)
        assert np.allclose(unrotate_rows(rotated), flat)

    def test_round_trip_with_padding(self):
        rng = np.random.default_rng(4)
        flat = rng.standard_normal(100)  # 100 < 128, single padded row
        rotated = rotate_rows(flat, row_size=64, seed=1)
        assert rotated.original_length == 100
        assert np.allclose(unrotate_rows(rotated), flat)

    def test_short_input_uses_small_row(self):
        flat = np.arange(5, dtype=float)
        rotated = rotate_rows(flat, row_size=2**15, seed=0)
        assert rotated.row_size == 8  # next power of two, not 32768
        assert np.allclose(unrotate_rows(rotated), flat)

    def test_partial_last_row_padded(self):
        rng = np.random.default_rng(5)
        flat = rng.standard_normal(64 + 10)
        rotated = rotate_rows(flat, row_size=64, seed=2)
        assert rotated.rows.shape == (2, 64)
        assert np.allclose(unrotate_rows(rotated), flat)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            rotate_rows(np.zeros(0), 64, 0)

    def test_rejects_bad_row_size(self):
        with pytest.raises(ValueError):
            rotate_rows(np.ones(10), 100, 0)

    def test_rows_norm_matches_input(self):
        rng = np.random.default_rng(6)
        flat = rng.standard_normal(256)
        rotated = rotate_rows(flat, row_size=64, seed=3)
        assert np.isclose(np.linalg.norm(rotated.rows), np.linalg.norm(flat))


@settings(max_examples=40)
@given(
    n=st.integers(min_value=1, max_value=700),
    log_row=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_rotate_rows_round_trip_property(n, log_row, seed):
    """rotate_rows/unrotate_rows is lossless for any length and row size."""
    flat = np.random.default_rng(seed).standard_normal(n)
    rotated = rotate_rows(flat, row_size=1 << log_row, seed=seed)
    assert np.allclose(unrotate_rows(rotated), flat, atol=1e-9)
