"""WorkerFaultPlan and ResilienceConfig: fault windows on the modeled clock."""

import math

import pytest

from repro.faults import FaultSpec, scenario_by_name
from repro.resilience import ResilienceConfig, WorkerFaultPlan


def crash(rank, start, stop=None):
    return FaultSpec("crash", f"worker:{rank}", start_s=start, stop_s=stop)


def straggler(rank, start, stop, rate=1.0, factor=4.0):
    return FaultSpec(
        "straggler",
        f"worker:{rank}",
        start_s=start,
        stop_s=stop,
        rate=rate,
        jitter_s=1e-3,
        slow_factor=factor,
    )


class TestWorkerFaultPlan:
    def test_rejects_non_worker_specs(self):
        with pytest.raises(ValueError, match="worker-scoped"):
            WorkerFaultPlan(specs=(FaultSpec("corrupt", "s0->s1", rate=0.1),))

    def test_crash_window(self):
        plan = WorkerFaultPlan(specs=(crash(1, start=2.0, stop=5.0),))
        assert not plan.crashed(1, 1.0)
        assert plan.crashed(1, 3.0)
        assert not plan.crashed(1, 6.0)
        assert not plan.crashed(0, 3.0)  # other workers unaffected

    def test_open_ended_crash(self):
        plan = WorkerFaultPlan(specs=(crash(1, start=2.0),))
        assert plan.crashed(1, 1e9)

    def test_round_time_inf_while_crashed(self):
        plan = WorkerFaultPlan(specs=(crash(1, start=0.0),))
        assert math.isinf(plan.round_time(1, 0.1, now_s=1.0))
        assert plan.round_time(0, 0.1, now_s=1.0) == pytest.approx(0.1)

    def test_straggler_expected_slowdown(self):
        # rate 0.5 at slow_factor 4 -> expected stretch 1 + 0.5*3 = 2.5
        plan = WorkerFaultPlan(
            specs=(straggler(2, 0.0, 10.0, rate=0.5, factor=4.0),)
        )
        assert plan.slow_factor(2, 5.0) == pytest.approx(2.5)
        assert plan.round_time(2, 0.1, now_s=5.0) == pytest.approx(0.25)
        assert plan.slow_factor(2, 20.0) == pytest.approx(1.0)  # window closed

    def test_overlapping_stragglers_compound(self):
        plan = WorkerFaultPlan(
            specs=(
                straggler(0, 0.0, 10.0, rate=1.0, factor=2.0),
                straggler(0, 0.0, 10.0, rate=1.0, factor=3.0),
            )
        )
        assert plan.slow_factor(0, 1.0) == pytest.approx(6.0)

    def test_from_scenario_picks_worker_specs_only(self):
        plan = WorkerFaultPlan.from_scenario(scenario_by_name("worker-crash"))
        assert len(plan.specs) == 1
        assert plan.specs[0].fault == "crash"
        plan = WorkerFaultPlan.from_scenario(scenario_by_name("flaky-link"))
        assert plan.specs == ()


class TestResilienceConfig:
    def test_defaults(self):
        config = ResilienceConfig()
        assert config.plan.specs == ()
        assert config.rejoin

    def test_validation(self):
        with pytest.raises(ValueError, match="deadline_factor"):
            ResilienceConfig(deadline_factor=1.0)
        with pytest.raises(ValueError, match="evict_after"):
            ResilienceConfig(evict_after=0)

    def test_from_scenario(self):
        config = ResilienceConfig.from_scenario(
            scenario_by_name("straggler-storm"), error_feedback=True
        )
        assert config.error_feedback
        assert all(s.fault == "straggler" for s in config.plan.specs)
        assert len(config.plan.specs) == 2
