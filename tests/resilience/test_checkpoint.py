"""Deterministic checkpoint/resume: crash at round R, continue byte-identically."""

import numpy as np
import pytest

from repro.collectives import AllReduceHook
from repro.core import codec_by_name
from repro.faults import scenario_by_name
from repro.nn.data import make_dataset
from repro.nn.models import MLP
from repro.resilience import ResilienceConfig, TrainingCheckpoint
from repro.resilience.cli import build_trainer
from repro.train import DDPTrainer, TrainConfig, TrimChannel
from repro.train.timing import RoundTimeModel, TimingConfig


def small_trainer(seed=0, epochs=3, resilience=None, label="ckpt"):
    train_set, test_set = make_dataset(
        num_classes=4, train_per_class=8, test_per_class=4, image_size=6, seed=seed
    )
    model = MLP(108, [8], 4, seed=seed + 3)
    hook = AllReduceHook(
        TrimChannel(codec_by_name("rht", root_seed=1, row_size=1024), 0.4, seed=2)
    )
    return DDPTrainer(
        model,
        train_set,
        test_set,
        world_size=2,
        hook=hook,
        config=TrainConfig(epochs=epochs, batch_size=4, lr=0.05, seed=seed),
        time_model=RoundTimeModel(TimingConfig()),
        resilience=resilience,
        label=label,
    )


class TestCheckpointObject:
    def test_json_round_trip(self):
        trainer = small_trainer()
        trainer.train(max_rounds=3)
        ckpt = trainer.checkpoint()
        blob = ckpt.to_json()
        assert TrainingCheckpoint.from_json(blob).to_json() == blob

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown checkpoint keys"):
            TrainingCheckpoint.from_json('{"bogus": 1}')

    def test_save_load(self, tmp_path):
        trainer = small_trainer()
        trainer.train(max_rounds=2)
        ckpt = trainer.checkpoint()
        path = ckpt.save(tmp_path / "run.ckpt.json")
        assert TrainingCheckpoint.load(path).to_json() == ckpt.to_json()


class TestByteIdenticalResume:
    @pytest.mark.parametrize("crash_round", [1, 5, 6, 11])
    def test_plain_training(self, crash_round):
        # crash_round 6 is an exact epoch boundary (3 rounds/epoch here);
        # 11 is one short of the full 12-round run.
        reference = small_trainer().train().to_json()

        crashed = small_trainer()
        crashed.train(max_rounds=crash_round)
        blob = crashed.checkpoint().to_json()

        resumed = small_trainer()
        resumed.restore(TrainingCheckpoint.from_json(blob))
        assert resumed.train().to_json() == reference

    def test_under_worker_faults_with_ef(self):
        scenario = scenario_by_name("worker-crash")

        def trainer():
            return build_trainer(
                scenario, epochs=3, world_size=3, error_feedback=True
            )

        reference = trainer().train().to_json()
        crashed = trainer()
        crashed.train(max_rounds=4)
        blob = crashed.checkpoint().to_json()
        resumed = trainer()
        resumed.restore(TrainingCheckpoint.from_json(blob))
        assert resumed.train().to_json() == reference

    def test_resumed_trainer_state_matches(self):
        scenario = scenario_by_name("straggler-storm")

        def trainer():
            return build_trainer(scenario, epochs=2, world_size=3)

        full = trainer()
        full.train()

        crashed = trainer()
        crashed.train(max_rounds=3)
        resumed = trainer()
        resumed.restore(TrainingCheckpoint.from_json(crashed.checkpoint().to_json()))
        resumed.train()

        assert np.array_equal(
            resumed.model.flat_parameters(), full.model.flat_parameters()
        )
        assert resumed.deadline.rounds == full.deadline.rounds
        assert resumed.deadline.total_stragglers == full.deadline.total_stragglers
        assert resumed.membership.state_dict() == full.membership.state_dict()
        # encode/decode seconds are real wall-clock observability timings,
        # not trajectory state -- everything else must match exactly.
        timings = ("encode_seconds", "decode_seconds")
        resumed_stats = {
            k: v for k, v in resumed.hook.stats.as_dict().items() if k not in timings
        }
        full_stats = {
            k: v for k, v in full.hook.stats.as_dict().items() if k not in timings
        }
        assert resumed_stats == full_stats


class TestRestoreValidation:
    def test_label_mismatch(self):
        trainer = small_trainer()
        ckpt = trainer.checkpoint()
        other = small_trainer(label="other")
        with pytest.raises(ValueError, match="checkpoint is for"):
            other.restore(ckpt)

    def test_seed_mismatch(self):
        ckpt = small_trainer(seed=0).checkpoint()
        with pytest.raises(ValueError, match="seed"):
            small_trainer(seed=1).restore(ckpt)

    def test_optimizer_without_state_dict(self):
        from repro.nn.optim import Adam

        trainer = small_trainer()
        trainer.optimizer = Adam(trainer.model.parameters())
        with pytest.raises(TypeError, match="state_dict"):
            trainer.checkpoint()


class TestRejoin:
    def test_bounded_crash_evicts_then_readmits(self):
        """A crash window that closes: the worker is evicted, then
        broadcast back in, and the run records both transitions."""
        from repro.faults import FaultSpec
        from repro.resilience import WorkerFaultPlan

        resilience = ResilienceConfig(
            plan=WorkerFaultPlan(
                specs=(FaultSpec("crash", "worker:1", start_s=0.0, stop_s=0.3),)
            ),
            evict_after=2,
        )
        trainer = small_trainer(epochs=4, resilience=resilience)
        history = trainer.train()
        assert sum(r.evictions for r in history.records) == 1
        assert sum(r.rejoins for r in history.records) == 1
        assert not trainer.membership.is_dead(1)

    def test_rejoin_disabled(self):
        from repro.faults import FaultSpec
        from repro.resilience import WorkerFaultPlan

        resilience = ResilienceConfig(
            plan=WorkerFaultPlan(
                specs=(FaultSpec("crash", "worker:1", start_s=0.0, stop_s=0.3),)
            ),
            evict_after=2,
            rejoin=False,
        )
        trainer = small_trainer(epochs=4, resilience=resilience)
        history = trainer.train()
        assert sum(r.rejoins for r in history.records) == 0
        assert trainer.membership.is_dead(1)
