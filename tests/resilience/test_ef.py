"""EFChannel: error-feedback residuals around any lossy channel."""

import numpy as np
import pytest

from repro.collectives import PerfectChannel
from repro.collectives.channel import GradientChannel
from repro.core import RHTCodec
from repro.resilience import EFChannel
from repro.train import TrimChannel


class HalfChannel(GradientChannel):
    """Deterministic lossy channel: delivers even coords, drops odd."""

    def transfer(self, flat, *, epoch=0, message_id=0, worker=0):
        flat = np.asarray(flat, dtype=np.float64)
        self.stats.messages += 1
        out = flat.copy()
        out[1::2] = 0.0
        return out


class SurrenderChannel(GradientChannel):
    """Always surrenders: delivers nothing."""

    def transfer(self, flat, *, epoch=0, message_id=0, worker=0):
        flat = np.asarray(flat, dtype=np.float64)
        self.stats.messages += 1
        self.count_surrender()
        return np.zeros_like(flat)


class TestResidualMechanics:
    def test_residual_is_what_the_channel_lost(self):
        ef = EFChannel(HalfChannel())
        x = np.arange(6.0)
        out = ef.transfer(x, worker=0)
        assert np.array_equal(out, [0.0, 0.0, 2.0, 0.0, 4.0, 0.0])
        assert np.array_equal(ef.residual(0), [0.0, 1.0, 0.0, 3.0, 0.0, 5.0])

    def test_residual_added_back_next_round(self):
        ef = EFChannel(HalfChannel())
        x = np.arange(6.0)
        ef.transfer(x, worker=0)
        ef.end_round()
        # Next round, zero input: the carried residual alone crosses the
        # channel, and its even part is finally delivered.
        out = ef.transfer(np.zeros(6), worker=0)
        assert np.array_equal(out, np.zeros(6))  # odd coords stay stuck
        assert np.array_equal(ef.residual(0), [0.0, 1.0, 0.0, 3.0, 0.0, 5.0])

    def test_surrendered_round_defers_everything(self):
        ef = EFChannel(SurrenderChannel())
        x = np.arange(4.0)
        out = ef.transfer(x, worker=0)
        assert np.array_equal(out, np.zeros(4))
        assert np.array_equal(ef.residual(0), x)
        ef.end_round()
        # The whole update arrives one round late through a now-perfect path.
        ef.inner = PerfectChannel()
        out = ef.transfer(np.zeros(4), worker=0)
        assert np.array_equal(out, x)
        assert np.array_equal(ef.residual(0), np.zeros(4))

    def test_residuals_are_per_worker(self):
        ef = EFChannel(HalfChannel())
        ef.transfer(np.ones(4), worker=0)
        ef.transfer(2 * np.ones(4), worker=1)
        assert np.array_equal(ef.residual(0), [0.0, 1.0, 0.0, 1.0])
        assert np.array_equal(ef.residual(1), [0.0, 2.0, 0.0, 2.0])

    def test_slots_track_bucketed_messages(self):
        ef = EFChannel(HalfChannel())
        ef.transfer(np.ones(4), worker=0)   # slot 0
        ef.transfer(np.ones(2), worker=0)   # slot 1 (second bucket)
        assert ef.residual(0, slot=0).size == 4
        assert ef.residual(0, slot=1).size == 2
        ef.end_round()
        ef.transfer(np.zeros(4), worker=0)  # slot 0 again
        assert np.array_equal(ef.residual(0, slot=0), [0.0, 1.0, 0.0, 1.0])

    def test_missing_residual_raises(self):
        ef = EFChannel(HalfChannel())
        with pytest.raises(KeyError):
            ef.residual(0)

    def test_drop_worker(self):
        ef = EFChannel(HalfChannel())
        ef.transfer(np.ones(4), worker=0)
        ef.transfer(np.ones(4), worker=1)
        ef.drop_worker(0)
        with pytest.raises(KeyError):
            ef.residual(0)
        assert ef.residual(1) is not None

    def test_stats_are_shared_with_inner(self):
        inner = SurrenderChannel()
        ef = EFChannel(inner)
        ef.transfer(np.ones(4), worker=0)
        assert ef.stats is inner.stats
        assert ef.stats.rounds_surrendered == 1
        ef.reset_stats()
        assert ef.stats.rounds_surrendered == 0

    def test_residual_norms(self):
        ef = EFChannel(HalfChannel())
        ef.transfer(np.array([0.0, 3.0, 0.0, 4.0]), worker=0)
        norms = ef.residual_norms()
        assert norms[0] == pytest.approx(5.0)


class TestStateDict:
    def test_round_trip(self):
        ef = EFChannel(HalfChannel())
        ef.transfer(np.arange(4.0), worker=0)
        ef.transfer(np.arange(4.0), worker=1)
        restored = EFChannel(HalfChannel())
        restored.load_state_dict(ef.state_dict())
        assert np.array_equal(restored.residual(0), ef.residual(0))
        assert np.array_equal(restored.residual(1), ef.residual(1))
        # slot counters travel too: the next same-round transfer
        # lands on slot 1, not slot 0.
        restored.transfer(np.ones(2), worker=0)
        assert restored.residual(0, slot=1).size == 2

    def test_json_safe(self):
        import json

        ef = EFChannel(HalfChannel())
        ef.transfer(np.arange(4.0), worker=0)
        blob = json.dumps(ef.state_dict(), sort_keys=True)
        restored = EFChannel(HalfChannel())
        restored.load_state_dict(json.loads(blob))
        assert np.array_equal(restored.residual(0), ef.residual(0))


class TestWithRealCodec:
    def test_ef_reduces_error_versus_plain_trimming(self):
        """Error feedback makes the *running sum* of delivered gradients
        track the running sum of inputs better than plain trimming."""
        rng = np.random.default_rng(0)
        n = 4096

        def channel():
            return TrimChannel(
                RHTCodec(root_seed=1, row_size=1024), trim_rate=0.6, seed=2
            )

        plain = channel()
        ef = EFChannel(channel())
        inputs = [rng.standard_normal(n) for _ in range(16)]
        sum_plain = np.zeros(n)
        sum_ef = np.zeros(n)
        for i, x in enumerate(inputs):
            sum_plain += plain.transfer(x, epoch=1, message_id=i)
            sum_ef += ef.transfer(x, epoch=1, message_id=i)
            ef.end_round()
        true = np.sum(inputs, axis=0)
        err_plain = np.linalg.norm(sum_plain - true)
        err_ef = np.linalg.norm(sum_ef - true)
        assert err_ef < err_plain
