"""The repro-resilience command line."""

import json

import pytest

from repro.resilience.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        ns = build_parser().parse_args(["run", "worker-crash"])
        assert ns.scenario == "worker-crash"
        assert ns.epochs == 20
        assert not ns.ef

    def test_resume_check_args(self):
        ns = build_parser().parse_args(
            ["resume-check", "straggler-storm", "--crash-round", "9", "--ef"]
        )
        assert ns.crash_round == 9
        assert ns.ef


class TestRun:
    def test_completes_under_worker_crash(self, tmp_path):
        out = tmp_path / "history.json"
        code = main(
            ["run", "worker-crash", "--epochs", "2", "--world", "3",
             "--out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["epochs"] == 2
        assert payload["summary"]["states"]["1"] == "dead"
        assert payload["summary"]["evictions"] == 1
        assert len(payload["history"]) == 2

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            main(["run", "no-such-preset", "--epochs", "1"])


class TestResumeCheck:
    def test_byte_identical(self):
        code = main(
            ["resume-check", "worker-crash", "--epochs", "2", "--world", "3",
             "--crash-round", "3"]
        )
        assert code == 0

    def test_with_error_feedback(self):
        code = main(
            ["resume-check", "straggler-storm", "--epochs", "2", "--world", "3",
             "--crash-round", "4", "--ef"]
        )
        assert code == 0
