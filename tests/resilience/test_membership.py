"""Membership: phi-accrual suspicion, eviction, rejoin."""

import pytest

from repro.resilience import Membership, WorkerState


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError, match="world_size"):
            Membership(0)
        with pytest.raises(ValueError, match="evict_after"):
            Membership(2, evict_after=0)
        with pytest.raises(ValueError, match="window"):
            Membership(2, window=1)

    def test_unknown_rank(self):
        membership = Membership(2)
        with pytest.raises(KeyError):
            membership.observe(5, 1.0)


class TestPhi:
    def test_no_history_means_no_suspicion(self):
        membership = Membership(2)
        assert membership.phi(0, 100.0) == 0.0

    def test_phi_grows_with_deviation(self):
        membership = Membership(2)
        for _ in range(10):
            membership.observe(0, 1.0)
        fast = membership.phi(0, 1.0)
        slow = membership.phi(0, 3.0)
        assert slow > fast
        assert slow == 30.0  # capped: sigma is floored, 2 s out is "never"

    def test_noisy_history_tolerates_noise(self):
        membership = Membership(2, suspect_phi=3.0)
        for i in range(20):
            membership.observe(0, 1.0 + 0.1 * (i % 5))
        # A sample inside the observed spread is unremarkable.
        assert membership.phi(0, 1.2) < 3.0


class TestTransitions:
    def test_eviction_after_consecutive_misses(self):
        membership = Membership(3, evict_after=3)
        assert membership.miss(1) is WorkerState.SUSPECT
        assert membership.miss(1) is WorkerState.SUSPECT
        assert membership.miss(1) is WorkerState.DEAD
        assert membership.evictions == 1
        assert membership.participants() == [0, 2]

    def test_observe_resets_the_miss_streak(self):
        membership = Membership(2, evict_after=3)
        membership.miss(0)
        membership.miss(0)
        membership.observe(0, 1.0)
        assert membership.missed[0] == 0
        membership.miss(0)
        assert membership.state(0) is WorkerState.SUSPECT  # streak restarted

    def test_dead_stays_dead_until_readmit(self):
        membership = Membership(2, evict_after=1)
        membership.miss(1)
        assert membership.is_dead(1)
        assert membership.observe(1, 1.0) is WorkerState.DEAD
        assert membership.miss(1) is WorkerState.DEAD
        assert membership.evictions == 1  # not re-evicted

    def test_readmit(self):
        membership = Membership(2, evict_after=1)
        membership.miss(1)
        membership.readmit(1)
        assert membership.state(1) is WorkerState.ALIVE
        assert membership.rejoins == 1
        assert membership.participants() == [0, 1]
        # stale history was discarded: no instant suspicion
        assert membership.phi(1, 50.0) == 0.0

    def test_readmit_requires_dead(self):
        membership = Membership(2)
        with pytest.raises(ValueError, match="not dead"):
            membership.readmit(0)

    def test_slow_responder_goes_suspect(self):
        membership = Membership(2, suspect_phi=3.0)
        for _ in range(16):
            membership.observe(0, 1.0)
        assert membership.observe(0, 10.0) is WorkerState.SUSPECT
        assert membership.observe(0, 1.0) is WorkerState.ALIVE


class TestStateDict:
    def test_round_trip(self):
        membership = Membership(3, evict_after=2)
        membership.observe(0, 1.0)
        membership.observe(0, 1.1)
        membership.miss(1)
        membership.miss(1)
        restored = Membership(3, evict_after=2)
        restored.load_state_dict(membership.state_dict())
        assert restored.state(1) is WorkerState.DEAD
        assert restored.evictions == 1
        assert restored.missed == membership.missed
        assert restored.phi(0, 2.0) == membership.phi(0, 2.0)
