"""RoundDeadline: responder/straggler split and partial aggregation."""

import numpy as np
import pytest

from repro.collectives import PerfectChannel, allreduce_mean, ring_allreduce
from repro.resilience import RoundDeadline


def grads(world=4, n=64, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n) for _ in range(world)]


class TestRoundDeadline:
    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            RoundDeadline(0.0)
        with pytest.raises(ValueError, match="positive"):
            RoundDeadline(-1.0)

    def test_split_before_begin_round_is_identity(self):
        deadline = RoundDeadline(1.0)
        responders, stragglers = deadline.split([0, 1, 2])
        assert responders == [0, 1, 2]
        assert stragglers == []

    def test_begin_round_fixes_the_set(self):
        deadline = RoundDeadline(1.0)
        deadline.begin_round({0: 0.5, 1: 2.0, 2: 0.9, 3: float("inf")})
        assert deadline.last_responders == (0, 2)
        assert deadline.last_stragglers == (1, 3)
        assert deadline.total_stragglers == 2
        # split only filters the fixed set -- calling it repeatedly
        # (DDP bucketing) must not double-count.
        for _ in range(3):
            responders, stragglers = deadline.split([0, 1, 2, 3])
            assert responders == [0, 2]
            assert stragglers == [1, 3]
        assert deadline.total_stragglers == 2

    def test_boundary_is_inclusive(self):
        deadline = RoundDeadline(1.0)
        deadline.begin_round({0: 1.0, 1: 1.0 + 1e-9})
        assert deadline.last_responders == (0,)
        assert deadline.last_stragglers == (1,)

    def test_from_time_model_scales_nominal(self):
        from repro.train.timing import RoundTimeModel

        model = RoundTimeModel()
        nominal = model.round_time(1000, world_size=4)
        deadline = RoundDeadline.from_time_model(model, 1000, factor=2.0, world_size=4)
        assert deadline.deadline_s == pytest.approx(2.0 * nominal.total_s)
        with pytest.raises(ValueError, match="exceed 1"):
            RoundDeadline.from_time_model(model, 1000, factor=1.0)

    def test_state_dict_round_trip(self):
        deadline = RoundDeadline(1.0)
        deadline.begin_round({0: 0.5, 1: 2.0})
        restored = RoundDeadline(1.0)
        restored.load_state_dict(deadline.state_dict())
        assert restored.rounds == 1
        assert restored.total_stragglers == 1
        assert restored.last_responders == (0,)
        assert restored.last_stragglers == (1,)


class TestPartialAllreduceMean:
    def test_mean_rescaled_over_responders(self):
        tensors = grads(world=4)
        deadline = RoundDeadline(1.0)
        deadline.begin_round({0: 0.5, 1: 5.0, 2: 0.5, 3: 0.5})
        out = allreduce_mean(tensors, PerfectChannel(), deadline=deadline)
        expected = np.mean([tensors[0], tensors[2], tensors[3]], axis=0)
        assert np.allclose(out, expected)

    def test_all_stragglers_surrenders_to_zeros(self):
        tensors = grads(world=3)
        channel = PerfectChannel()
        deadline = RoundDeadline(1.0)
        deadline.begin_round({0: 9.0, 1: 9.0, 2: 9.0})
        out = allreduce_mean(tensors, channel, deadline=deadline)
        assert np.array_equal(out, np.zeros_like(tensors[0]))
        assert channel.stats.rounds_surrendered == 1

    def test_no_deadline_is_plain_mean(self):
        tensors = grads(world=4)
        out = allreduce_mean(tensors, PerfectChannel())
        assert np.allclose(out, np.mean(tensors, axis=0))


class TestPartialRingAllreduce:
    def test_straggler_slots_get_consensus_copy(self):
        tensors = grads(world=5, n=103)
        deadline = RoundDeadline(1.0)
        deadline.begin_round({0: 0.5, 1: 5.0, 2: 0.5, 3: 0.5, 4: 0.5})
        outs = ring_allreduce(tensors, PerfectChannel(), deadline=deadline)
        expected = np.mean(
            [tensors[0], tensors[2], tensors[3], tensors[4]], axis=0
        )
        assert len(outs) == 5
        for out in outs:
            assert np.allclose(out, expected)

    def test_all_stragglers_surrenders_to_zeros(self):
        tensors = grads(world=3)
        channel = PerfectChannel()
        deadline = RoundDeadline(1.0)
        deadline.begin_round({0: 9.0, 1: 9.0, 2: 9.0})
        outs = ring_allreduce(tensors, channel, deadline=deadline)
        assert all(np.array_equal(o, np.zeros_like(tensors[0])) for o in outs)
        assert channel.stats.rounds_surrendered == 1

    def test_single_responder_ring(self):
        tensors = grads(world=3)
        deadline = RoundDeadline(1.0)
        deadline.begin_round({0: 9.0, 1: 0.5, 2: 9.0})
        outs = ring_allreduce(tensors, PerfectChannel(), deadline=deadline)
        for out in outs:
            assert np.allclose(out, tensors[1])
