"""Property suite: partial aggregation and error feedback hold for any input.

Two invariants from the issue:

* partial aggregation is the exact (unbiased) mean over *any* non-empty
  responder subset — the straggler exclusion only changes which tensors
  are averaged, never the weighting;
* error-feedback residuals telescope — after T rounds through any lossy
  channel, ``sum(delivered) + residual_T == sum(inputs)`` to float
  accumulation error.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives import PerfectChannel, allreduce_mean, ring_allreduce
from repro.collectives.channel import GradientChannel
from repro.resilience import EFChannel, RoundDeadline


class MaskChannel(GradientChannel):
    """Lossy channel delivering a deterministic, seed-driven subset of
    coordinates (stands in for trim/drop/quantize in the proofs)."""

    def __init__(self, keep_prob, seed):
        super().__init__()
        self.keep_prob = keep_prob
        self._rng = np.random.default_rng(seed)

    def transfer(self, flat, *, epoch=0, message_id=0, worker=0):
        flat = np.asarray(flat, dtype=np.float64)
        mask = self._rng.random(flat.size) < self.keep_prob
        return np.where(mask, flat, 0.0)


def subset_deadline(responders, world):
    """A deadline whose round has exactly ``responders`` in time."""
    deadline = RoundDeadline(1.0)
    deadline.begin_round(
        {rank: (0.5 if rank in responders else 2.0) for rank in range(world)}
    )
    return deadline


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), world=st.integers(min_value=1, max_value=6),
       n=st.integers(min_value=1, max_value=64),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_partial_allreduce_mean_is_responder_mean(data, world, n, seed):
    responders = data.draw(
        st.sets(st.integers(min_value=0, max_value=world - 1), min_size=1),
        label="responders",
    )
    rng = np.random.default_rng(seed)
    tensors = [rng.standard_normal(n) for _ in range(world)]
    out = allreduce_mean(
        tensors, PerfectChannel(), deadline=subset_deadline(responders, world)
    )
    expected = np.mean([tensors[r] for r in sorted(responders)], axis=0)
    np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-12)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), world=st.integers(min_value=1, max_value=6),
       n=st.integers(min_value=1, max_value=64),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_partial_ring_allreduce_matches_responder_mean(data, world, n, seed):
    responders = data.draw(
        st.sets(st.integers(min_value=0, max_value=world - 1), min_size=1),
        label="responders",
    )
    rng = np.random.default_rng(seed)
    tensors = [rng.standard_normal(n) for _ in range(world)]
    outs = ring_allreduce(
        tensors, PerfectChannel(), deadline=subset_deadline(responders, world)
    )
    expected = np.mean([tensors[r] for r in sorted(responders)], axis=0)
    assert len(outs) == world
    for out in outs:  # stragglers receive the consensus copy too
        np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-9)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rounds=st.integers(min_value=1, max_value=12),
       n=st.integers(min_value=1, max_value=128),
       keep=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_ef_residual_telescopes(rounds, n, keep, seed):
    ef = EFChannel(MaskChannel(keep, seed=seed))
    rng = np.random.default_rng(seed + 1)
    inputs = [rng.standard_normal(n) for _ in range(rounds)]
    delivered_sum = np.zeros(n)
    for t, x in enumerate(inputs):
        delivered_sum += ef.transfer(x, epoch=1, message_id=t, worker=0)
        ef.end_round()
    total = delivered_sum + ef.residual(0)
    np.testing.assert_allclose(total, np.sum(inputs, axis=0), rtol=1e-9, atol=1e-9)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rounds=st.integers(min_value=1, max_value=8),
       workers=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_ef_telescopes_per_worker(rounds, workers, seed):
    """The invariant holds independently per worker over a shared channel."""
    ef = EFChannel(MaskChannel(0.5, seed=seed))
    rng = np.random.default_rng(seed + 1)
    n = 32
    sums = {w: np.zeros(n) for w in range(workers)}
    totals = {w: np.zeros(n) for w in range(workers)}
    for t in range(rounds):
        for w in range(workers):
            x = rng.standard_normal(n)
            totals[w] += x
            sums[w] += ef.transfer(x, epoch=1, message_id=t, worker=w)
        ef.end_round()
    for w in range(workers):
        np.testing.assert_allclose(
            sums[w] + ef.residual(w), totals[w], rtol=1e-9, atol=1e-9
        )
