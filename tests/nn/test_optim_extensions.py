"""Tests for Adam, CosineLR, and gradient clipping."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam, CosineLR, clip_grad_norm


class TestAdam:
    def test_first_step_moves_by_lr(self):
        """With bias correction, the first Adam step is ~lr * sign(g)."""
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([3.0])
        opt.step()
        assert np.allclose(p.data, [-0.1], atol=1e-6)

    def test_scale_invariance(self):
        """Adam's update direction is invariant to gradient scale."""
        trajectories = []
        for scale in [1.0, 1000.0]:
            p = Parameter(np.array([1.0]))
            opt = Adam([p], lr=0.01)
            for _ in range(10):
                p.grad = np.array([scale * 2.0])
                opt.step()
            trajectories.append(p.data.copy())
        assert np.allclose(trajectories[0], trajectories[1], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.grad = 2 * (p.data - 1.0)
            opt.step()
        assert np.allclose(p.data, [1.0], atol=1e-2)

    def test_weight_decay(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.1)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 10.0

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0]))
        Adam([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0])

    def test_validation(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            Adam([p], lr=0.0)
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestCosineLR:
    def test_anneals_to_min(self):
        opt = SGD([Parameter(np.array([0.0]))], lr=1.0)
        sched = CosineLR(opt, t_max=10, min_lr=0.1)
        lrs = []
        for _ in range(10):
            sched.step()
            lrs.append(opt.lr)
        assert lrs[-1] == pytest.approx(0.1)
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_halfway_point(self):
        opt = SGD([Parameter(np.array([0.0]))], lr=1.0)
        sched = CosineLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_stays_at_min_past_t_max(self):
        opt = SGD([Parameter(np.array([0.0]))], lr=1.0)
        sched = CosineLR(opt, t_max=4, min_lr=0.2)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.2)

    def test_validation(self):
        opt = SGD([Parameter(np.array([0.0]))], lr=1.0)
        with pytest.raises(ValueError):
            CosineLR(opt, t_max=0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.array([0.0, 0.0]))
        p.grad = np.array([3.0, 4.0])  # norm 5
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(5.0)
        assert np.allclose(p.grad, [3.0, 4.0])

    def test_clips_to_max_norm(self):
        p = Parameter(np.array([0.0, 0.0]))
        p.grad = np.array([3.0, 4.0])
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)
        # Direction preserved.
        assert p.grad[1] / p.grad[0] == pytest.approx(4.0 / 3.0)

    def test_global_norm_across_parameters(self):
        a = Parameter(np.array([0.0]))
        b = Parameter(np.array([0.0]))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        clip_grad_norm([a, b], max_norm=1.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_none_grads_ignored(self):
        a = Parameter(np.array([0.0]))
        assert clip_grad_norm([a], max_norm=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)
