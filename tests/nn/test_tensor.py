"""Tests for the autograd engine, including numeric gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        x[idx] += eps
        hi = f(x)
        x[idx] -= 2 * eps
        lo = f(x)
        x[idx] += eps
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5, 7])
        assert np.allclose(b.grad, [2, 3])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.5])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward()
        assert np.allclose(a.grad, [6.0])

    def test_matmul_backward(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, b.data.sum(axis=1, keepdims=True).T.repeat(2, 0))
        assert np.allclose(b.grad, a.data.sum(axis=0)[:, None].repeat(4, 1))

    def test_scalar_right_ops(self):
        a = Tensor([2.0], requires_grad=True)
        (3.0 * a + 1.0 - a / 2.0).backward()
        assert np.allclose(a.grad, [2.5])

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        out = 10.0 - a
        out.backward()
        assert np.allclose(a.grad, [-1.0])
        b = Tensor([4.0], requires_grad=True)
        (8.0 / b).backward()
        assert np.allclose(b.grad, [-0.5])


class TestBroadcasting:
    def test_broadcast_add(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert np.allclose(b.grad, [3, 3, 3, 3])

    def test_broadcast_keepdim_axis(self):
        a = Tensor(np.ones((2, 5)), requires_grad=True)
        b = Tensor(np.ones((2, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(b.grad, [[5], [5]])

    def test_scalar_broadcast(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(2.0, requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(b.grad, 4.0)


class TestReductionsAndShapes:
    def test_mean_gradient(self):
        a = Tensor(np.ones((4, 5)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, 1.0 / 20)

    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_mean_tuple_axis(self):
        a = Tensor(np.ones((2, 3, 4, 5)), requires_grad=True)
        a.mean(axis=(0, 2, 3), keepdims=True).sum().backward()
        assert np.allclose(a.grad, 1.0 / 40)

    def test_max_gradient_goes_to_argmax(self):
        a = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        a.max(axis=1).backward()
        assert np.allclose(a.grad, [[0, 1, 0]])

    def test_max_ties_split(self):
        a = Tensor([[3.0, 3.0]], requires_grad=True)
        a.max(axis=1).backward()
        assert np.allclose(a.grad, [[0.5, 0.5]])

    def test_reshape_transpose(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        out = a.reshape(2, 3).transpose()
        assert out.shape == (3, 2)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_getitem_scatter(self):
        a = Tensor(np.arange(5, dtype=float), requires_grad=True)
        a[1:3].sum().backward()
        assert np.allclose(a.grad, [0, 1, 1, 0, 0])

    def test_pad2d_round_trip(self):
        a = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        padded = a.pad2d(1)
        assert padded.shape == (1, 1, 4, 4)
        padded.sum().backward()
        assert np.allclose(a.grad, 1.0)


class TestElementwise:
    def test_relu(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0, 1])

    def test_exp_log_tanh_sqrt(self):
        for fn, ref in [
            ("exp", lambda v: np.exp(v)),
            ("log", lambda v: 1 / v),
            ("tanh", lambda v: 1 - np.tanh(v) ** 2),
            ("sqrt", lambda v: 0.5 / np.sqrt(v)),
        ]:
            a = Tensor([0.7, 1.3], requires_grad=True)
            getattr(a, fn)().sum().backward()
            expected = ref(np.array([0.7, 1.3]))
            assert np.allclose(a.grad, expected), fn


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a + a).backward()  # d/da (a^2 + a) = 2a + 1 = 5
        assert np.allclose(a.grad, [5.0])

    def test_diamond_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2.0
        c = a * 3.0
        (b + c).backward()
        assert np.allclose(a.grad, [5.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_blocks_tape(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        assert not a.detach().requires_grad

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(5000):
            out = out + 1.0
        out.backward()
        assert np.allclose(a.grad, [1.0])


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_composite_matches_numeric_gradient(seed):
    """Random composite expression: autograd == central differences."""
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(0.5, 1.5, size=(3, 4))

    def f(x_arr):
        x = Tensor(x_arr, requires_grad=True)
        y = ((x * 2.0 + 1.0).tanh() * x.sqrt() + (x @ np.ones((4, 2))).relu().sum()).mean()
        return y

    x = Tensor(x0.copy(), requires_grad=True)
    y = ((x * 2.0 + 1.0).tanh() * x.sqrt() + (x @ np.ones((4, 2))).relu().sum()).mean()
    y.backward()
    auto = x.grad
    numeric = numeric_grad(lambda arr: f(arr).item(), x0.copy())
    assert np.allclose(auto, numeric, atol=1e-5)
