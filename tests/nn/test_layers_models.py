"""Tests for layers, modules, and the model zoo."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Linear,
    LogisticRegression,
    MLP,
    MaxPool2d,
    ReLU,
    Sequential,
    SmallConvNet,
    Tensor,
    cross_entropy,
    make_vgg,
)


class TestModuleMechanics:
    def test_parameters_discovered_recursively(self):
        model = Sequential(
            Linear(4, 8, np.random.default_rng(0)), ReLU(), Linear(8, 2, np.random.default_rng(1))
        )
        assert len(model.parameters()) == 4  # 2 weights + 2 biases

    def test_parameters_unique(self):
        shared = Linear(4, 4, np.random.default_rng(0))
        model = Sequential(shared, shared)
        assert len(model.parameters()) == 2

    def test_train_eval_propagates(self):
        model = Sequential(BatchNorm2d(3), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_num_parameters(self):
        model = Linear(10, 5, np.random.default_rng(0))
        assert model.num_parameters() == 55

    def test_flat_gradient_round_trip(self):
        model = MLP(6, [4], 3, seed=0)
        x = np.random.default_rng(1).standard_normal((2, 6))
        model.zero_grad()
        cross_entropy(model(Tensor(x)), np.array([0, 1])).backward()
        flat = model.flat_gradient()
        assert flat.shape == (model.num_parameters(),)
        model.load_flat_gradient(flat * 2)
        assert np.allclose(model.flat_gradient(), flat * 2)

    def test_flat_gradient_none_grads_are_zero(self):
        model = MLP(6, [4], 3, seed=0)
        assert np.allclose(model.flat_gradient(), 0.0)

    def test_flat_parameters_round_trip(self):
        model = MLP(6, [4], 3, seed=0)
        flat = model.flat_parameters()
        model.load_flat_parameters(flat * 0.5)
        assert np.allclose(model.flat_parameters(), flat * 0.5)

    def test_load_wrong_size_rejected(self):
        model = MLP(6, [4], 3, seed=0)
        with pytest.raises(ValueError):
            model.load_flat_gradient(np.zeros(7))
        with pytest.raises(ValueError):
            model.load_flat_parameters(np.zeros(7))


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(12, 5, np.random.default_rng(0))
        out = layer(Tensor(np.zeros((3, 12))))
        assert out.shape == (3, 5)

    def test_conv_layer_shapes(self):
        layer = Conv2d(3, 8, kernel_size=3, rng=np.random.default_rng(0), padding=1)
        out = layer(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_batchnorm_normalizes_in_train_mode(self):
        bn = BatchNorm2d(4)
        x = Tensor(np.random.default_rng(0).standard_normal((8, 4, 5, 5)) * 3 + 7)
        out = bn(x).numpy()
        assert abs(out.mean()) < 1e-6
        assert abs(out.std() - 1.0) < 1e-2

    def test_batchnorm_running_stats_used_in_eval(self):
        bn = BatchNorm2d(2)
        rng = np.random.default_rng(1)
        for _ in range(50):
            bn(Tensor(rng.standard_normal((16, 2, 3, 3)) * 2 + 5))
        bn.eval()
        x = rng.standard_normal((4, 2, 3, 3)) * 2 + 5
        out = bn(Tensor(x)).numpy()
        # Eval-mode output should be roughly standardized via running stats.
        assert abs(out.mean()) < 0.3
        assert 0.7 < out.std() < 1.3

    def test_batchnorm_backward_runs(self):
        bn = BatchNorm2d(3)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 3, 2, 2)), requires_grad=True)
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None
        assert x.grad is not None

    def test_sequential_indexing(self):
        model = Sequential(ReLU(), MaxPool2d(2))
        assert len(model) == 2
        assert isinstance(model[0], ReLU)


class TestModels:
    def test_vgg19_config_matches_paper_depth(self):
        # VGG-19: 16 conv layers + 5 pools in the feature extractor.
        cfg = make_vgg.__globals__["VGG_CONFIGS"]["vgg19"]
        assert sum(1 for c in cfg if c != "M") == 16
        assert sum(1 for c in cfg if c == "M") == 5

    def test_vgg19_parameter_count_plausible(self):
        # Conv trunk of VGG-19 is ~20M parameters; with a small direct
        # classifier for 100 classes we should land in that ballpark.
        model = make_vgg("vgg19", num_classes=100, image_size=32, batch_norm=False, seed=0)
        assert 19e6 < model.num_parameters() < 22e6

    def test_vgg_micro_forward_backward(self):
        model = make_vgg("vgg-micro", num_classes=10, image_size=8, seed=0)
        x = np.random.default_rng(0).standard_normal((4, 3, 8, 8))
        loss = cross_entropy(model(Tensor(x)), np.array([0, 1, 2, 3]))
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_vgg_rejects_odd_resolution_pooling(self):
        with pytest.raises(ValueError, match="odd resolution"):
            make_vgg([8, "M", 16, "M"], image_size=6)

    def test_vgg_classifier_head_options(self):
        plain = make_vgg("vgg-micro", num_classes=10, image_size=8, classifier_width=0)
        wide = make_vgg("vgg-micro", num_classes=10, image_size=8, classifier_width=32)
        assert wide.num_parameters() != plain.num_parameters()

    def test_mlp_flattens_images(self):
        model = MLP(3 * 8 * 8, [16], 5, seed=0)
        out = model(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 5)

    def test_logreg(self):
        model = LogisticRegression(10, 3, seed=0)
        assert model(Tensor(np.zeros((4, 10)))).shape == (4, 3)

    def test_smallconvnet_validates_size(self):
        with pytest.raises(ValueError):
            SmallConvNet(image_size=10)

    def test_deterministic_init(self):
        a = make_vgg("vgg-micro", num_classes=10, image_size=8, seed=5)
        b = make_vgg("vgg-micro", num_classes=10, image_size=8, seed=5)
        assert np.allclose(a.flat_parameters(), b.flat_parameters())


class TestBatchNormGradients:
    def test_batchnorm_matches_numeric_gradient(self):
        """Full numeric check through BN's mean/var composite backward."""
        from tests.nn.test_tensor import numeric_grad
        from repro.nn import cross_entropy

        rng = np.random.default_rng(7)
        x0 = rng.standard_normal((4, 2, 3, 3))
        labels = np.array([0, 1, 0, 1])

        def build():
            bn = BatchNorm2d(2)
            rng_local = np.random.default_rng(3)
            head = Linear(2 * 9, 2, rng_local)
            return bn, head

        def loss_of(x_arr):
            bn, head = build()
            out = bn(Tensor(x_arr))
            logits = head(out.reshape(4, -1))
            return cross_entropy(logits, labels)

        bn, head = build()
        x = Tensor(x0.copy(), requires_grad=True)
        logits = head(bn(x).reshape(4, -1))
        cross_entropy(logits, labels).backward()
        numeric = numeric_grad(lambda arr: loss_of(arr).item(), x0.copy())
        assert np.allclose(x.grad, numeric, atol=1e-5)

    def test_batchnorm_gamma_beta_numeric_gradient(self):
        from tests.nn.test_tensor import numeric_grad

        rng = np.random.default_rng(8)
        x0 = rng.standard_normal((3, 2, 2, 2))
        bn = BatchNorm2d(2)
        out = bn(Tensor(x0)) * Tensor(rng.standard_normal((3, 2, 2, 2)))
        loss = out.sum()
        loss.backward()
        gamma_auto = bn.gamma.grad.copy()

        def loss_of_gamma(gamma_arr):
            bn2 = BatchNorm2d(2)
            bn2.gamma.data[...] = gamma_arr
            rng2 = np.random.default_rng(8)
            _ = rng2.standard_normal((3, 2, 2, 2))  # reproduce x draw order
            weight = rng2.standard_normal((3, 2, 2, 2))
            out2 = bn2(Tensor(x0)) * Tensor(weight)
            return out2.sum().item()

        numeric = numeric_grad(loss_of_gamma, bn.gamma.data.copy())
        assert np.allclose(gamma_auto, numeric, atol=1e-5)
