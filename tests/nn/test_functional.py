"""Tests for conv/pool/dropout/cross-entropy, with numeric grad checks."""

import numpy as np
import pytest

from repro.nn import Tensor, conv2d, cross_entropy, log_softmax, max_pool2d, softmax
from repro.nn.functional import dropout

from .test_tensor import numeric_grad


def reference_conv(x, w, stride=1, padding=0):
    """Direct-loop convolution for correctness checks."""
    n, c, h, w_in = x.shape
    f, _, kh, kw = w.shape
    xp = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)])
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w_in + 2 * padding - kw) // stride + 1
    out = np.zeros((n, f, oh, ow))
    for b in range(n):
        for ff in range(f):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[b, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[b, ff, i, j] = (patch * w[ff]).sum()
    return out


class TestConv2d:
    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3))
        for stride, padding in [(1, 0), (1, 1), (2, 1), (2, 0)]:
            out = conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
            ref = reference_conv(x, w, stride=stride, padding=padding)
            assert np.allclose(out.numpy(), ref), (stride, padding)

    def test_bias_broadcasts(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((1, 2, 4, 4)))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)))
        b = Tensor(np.array([10.0, 20.0, 30.0]))
        out = conv2d(x, w, b, padding=1)
        no_bias = conv2d(x, w, padding=1)
        diff = out.numpy() - no_bias.numpy()
        assert np.allclose(diff[0, 0], 10.0)
        assert np.allclose(diff[0, 2], 30.0)

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(2)
        x0 = rng.standard_normal((2, 2, 5, 5))
        w0 = rng.standard_normal((3, 2, 3, 3))

        x = Tensor(x0.copy(), requires_grad=True)
        w = Tensor(w0.copy(), requires_grad=True)
        conv2d(x, w, stride=2, padding=1).sum().backward()

        def loss_x(arr):
            return conv2d(Tensor(arr), Tensor(w0), stride=2, padding=1).sum().item()

        def loss_w(arr):
            return conv2d(Tensor(x0), Tensor(arr), stride=2, padding=1).sum().item()

        assert np.allclose(x.grad, numeric_grad(loss_x, x0.copy()), atol=1e-5)
        assert np.allclose(w.grad, numeric_grad(loss_w, w0.copy()), atol=1e-5)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((2, 4, 3, 3))))

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ValueError, match="larger than"):
            conv2d(Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((1, 1, 3, 3))))


class TestMaxPool:
    def test_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), kernel=2)
        assert np.allclose(out.numpy(), [[[[5, 7], [13, 15]]]])

    def test_gradient_routes_to_max(self):
        x0 = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        x = Tensor(x0, requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1
        expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1
        assert np.allclose(x.grad, expected)

    def test_numeric_gradient(self):
        rng = np.random.default_rng(3)
        x0 = rng.standard_normal((2, 3, 4, 4))
        x = Tensor(x0.copy(), requires_grad=True)
        (max_pool2d(x, 2) * Tensor(np.ones((2, 3, 2, 2)) * 2)).sum().backward()

        def loss(arr):
            return (max_pool2d(Tensor(arr), 2) * Tensor(np.ones((2, 3, 2, 2)) * 2)).sum().item()

        assert np.allclose(x.grad, numeric_grad(loss, x0.copy()), atol=1e-5)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            max_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones(100))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_p_identity(self):
        x = Tensor(np.ones(100))
        assert dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_scaling_preserves_mean(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones(100_000))
        out = dropout(x, 0.3, rng)
        assert abs(out.numpy().mean() - 1.0) < 0.02

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).standard_normal((7, 5)) * 20
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_log_softmax_stable_at_large_logits(self):
        logits = np.array([[1000.0, 0.0]])
        out = log_softmax(logits)
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(0.0)

    def test_uniform_logits_loss_is_log_k(self):
        logits = Tensor(np.zeros((4, 10)), requires_grad=True)
        loss = cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10))

    def test_gradient_is_probs_minus_onehot(self):
        rng = np.random.default_rng(4)
        raw = rng.standard_normal((6, 5))
        labels = rng.integers(0, 5, 6)
        logits = Tensor(raw, requires_grad=True)
        cross_entropy(logits, labels).backward()
        probs = softmax(raw)
        onehot = np.eye(5)[labels]
        assert np.allclose(logits.grad, (probs - onehot) / 6)

    def test_numeric_gradient(self):
        rng = np.random.default_rng(5)
        raw = rng.standard_normal((3, 4))
        labels = np.array([1, 0, 3])
        logits = Tensor(raw.copy(), requires_grad=True)
        cross_entropy(logits, labels, label_smoothing=0.1).backward()

        def loss(arr):
            return cross_entropy(Tensor(arr), labels, label_smoothing=0.1).item()

        assert np.allclose(logits.grad, numeric_grad(loss, raw.copy()), atol=1e-6)

    def test_label_smoothing_raises_min_loss(self):
        perfect = np.full((1, 4), -100.0)
        perfect[0, 2] = 100.0
        plain = cross_entropy(Tensor(perfect), np.array([2])).item()
        smoothed = cross_entropy(Tensor(perfect), np.array([2]), label_smoothing=0.2).item()
        assert plain == pytest.approx(0.0, abs=1e-6)
        assert smoothed > plain

    def test_bad_labels_rejected(self):
        logits = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="out of range"):
            cross_entropy(logits, np.array([0, 5]))
        with pytest.raises(ValueError, match="labels shape"):
            cross_entropy(logits, np.array([0]))
