"""Tests for optimizers, schedulers, data pipeline, and metrics."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    AverageMeter,
    DataLoader,
    LogisticRegression,
    StepLR,
    Tensor,
    cross_entropy,
    evaluate,
    make_dataset,
    topk_accuracy,
)
from repro.nn.layers import Parameter


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.0)
        p.grad = np.array([2.0])
        opt.step()
        assert np.allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.5)
        for expected in [-1.0, -2.5]:  # v: 1, then 1.5
            p.grad = np.array([1.0])
            opt.step()
            assert np.allclose(p.data, [expected])

    def test_weight_decay(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        p.grad = np.array([0.0])
        opt.step()
        assert np.allclose(p.data, [10.0 - 0.1 * 1.0])

    def test_none_grad_skipped(self):
        p = Parameter(np.array([3.0]))
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [3.0])

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.zero_grad()
        assert p.grad is None

    def test_validation(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(200):
            p.grad = 2 * (p.data - 1.0)  # d/dp (p-1)^2
            opt.step()
        assert np.allclose(p.data, [1.0], atol=1e-4)


class TestStepLR:
    def test_decay_schedule(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1e-3)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            lrs.append(opt.lr)
            sched.step()
        assert lrs == pytest.approx([1e-3, 1e-3, 1e-4, 1e-4, 1e-5])

    def test_validation(self):
        opt = SGD([Parameter(np.array([0.0]))], lr=1e-3)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)


class TestDataset:
    def test_shapes_and_labels(self):
        train, test = make_dataset(num_classes=7, train_per_class=4, test_per_class=2,
                                   image_size=8, seed=0)
        assert train.images.shape == (28, 3, 8, 8)
        assert test.images.shape == (14, 3, 8, 8)
        assert set(np.unique(train.labels)) == set(range(7))

    def test_normalized(self):
        train, _ = make_dataset(num_classes=5, train_per_class=10, seed=0)
        assert abs(train.images.mean()) < 1e-9
        assert abs(train.images.std() - 1.0) < 1e-6

    def test_deterministic(self):
        a, _ = make_dataset(num_classes=3, train_per_class=2, seed=9)
        b, _ = make_dataset(num_classes=3, train_per_class=2, seed=9)
        assert np.allclose(a.images, b.images)

    def test_classes_are_learnable(self):
        """A linear probe beats chance comfortably at moderate noise."""
        train, test = make_dataset(num_classes=5, train_per_class=30,
                                   test_per_class=10, noise=1.0, seed=1)
        model = LogisticRegression(3 * 8 * 8, 5, seed=0)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        loader = DataLoader(train, batch_size=25, seed=0)
        for _ in range(15):
            for images, labels in loader:
                opt.zero_grad()
                cross_entropy(model(Tensor(images)), labels).backward()
                opt.step()
        acc = evaluate(model, test)
        assert acc[1] > 0.5  # chance is 0.2


class TestDataLoader:
    def test_batch_shapes(self):
        train, _ = make_dataset(num_classes=4, train_per_class=8, seed=0)
        loader = DataLoader(train, batch_size=8, seed=0)
        batches = list(loader)
        assert len(batches) == 4
        assert batches[0][0].shape == (8, 3, 8, 8)

    def test_drop_last(self):
        train, _ = make_dataset(num_classes=3, train_per_class=3, seed=0)  # 9 samples
        assert len(DataLoader(train, batch_size=4, drop_last=True)) == 2
        assert len(DataLoader(train, batch_size=4, drop_last=False)) == 3

    def test_shuffle_changes_order(self):
        train, _ = make_dataset(num_classes=4, train_per_class=8, seed=0)
        first = next(iter(DataLoader(train, batch_size=8, shuffle=True, seed=1)))[1]
        ordered = next(iter(DataLoader(train, batch_size=8, shuffle=False)))[1]
        assert not np.array_equal(first, ordered)

    def test_augment_preserves_shape(self):
        train, _ = make_dataset(num_classes=3, train_per_class=8, seed=0)
        images, _ = next(iter(DataLoader(train, batch_size=8, augment=True, seed=0)))
        assert images.shape == (8, 3, 8, 8)

    def test_invalid_batch_size(self):
        train, _ = make_dataset(num_classes=2, train_per_class=2, seed=0)
        with pytest.raises(ValueError):
            DataLoader(train, batch_size=0)


class TestMetrics:
    def test_top1(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert topk_accuracy(logits, np.array([1, 0]), k=1) == 1.0
        assert topk_accuracy(logits, np.array([0, 1]), k=1) == 0.0

    def test_top5_includes_lower_ranks(self):
        logits = np.arange(10, dtype=float)[None, :]
        assert topk_accuracy(logits, np.array([5]), k=5) == 1.0
        assert topk_accuracy(logits, np.array([4]), k=5) == 0.0

    def test_k_clamped_to_classes(self):
        logits = np.array([[1.0, 2.0]])
        assert topk_accuracy(logits, np.array([0]), k=10) == 1.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros(3), np.zeros(3, dtype=int))

    def test_average_meter(self):
        meter = AverageMeter()
        meter.update(1.0, n=2)
        meter.update(4.0, n=1)
        assert meter.mean == pytest.approx(2.0)
        meter.reset()
        assert meter.mean == 0.0
