"""Multi-tenant isolation regressions.

Two anchors:

* a single job on an idle fabric must match the in-memory single-job
  baseline *exactly*, seed for seed — the fabric may add latency, never
  arithmetic;
* two identical jobs sharing a congested core must be treated evenly —
  trim fractions within a tolerance band, both finishing training.
"""

import pytest

from repro.cluster import ClusterDriver, ClusterScenario, JobSpec, TenantSpec
from repro.collectives.hooks import AllReduceHook
from repro.core.codec import codec_by_name
from repro.nn.data import make_dataset
from repro.nn.models import MLP
from repro.train.ddp import DDPTrainer, TrainConfig
from repro.train.trim_channel import TrimChannel

SEED = 5

#: Trim-fraction gap two identical co-located jobs may show before we
#: call the fabric unfair.
FAIRNESS_BAND = 0.05


def _baseline_history(job_seed: int, label: str, workers: int, epochs: int):
    """The PR-1-era in-memory recipe the fabric must reproduce exactly."""
    train_set, test_set = make_dataset(
        num_classes=8,
        train_per_class=16,
        test_per_class=8,
        image_size=8,
        noise=1.0,
        seed=job_seed,
    )
    model = MLP(192, [16], 8, seed=job_seed + 3)
    codec = codec_by_name("rht", root_seed=job_seed + 1, row_size=1024)
    hook = AllReduceHook(TrimChannel(codec, 0.0, seed=job_seed + 2))
    trainer = DDPTrainer(
        model,
        train_set,
        test_set,
        world_size=workers,
        hook=hook,
        config=TrainConfig(
            epochs=epochs, batch_size=8, lr=0.1, seed=job_seed, augment=True
        ),
        label=label,
    )
    return trainer.train()


class TestIdleFabricParity:
    def test_single_job_matches_in_memory_baseline(self):
        scenario = ClusterScenario(
            name="idle-parity",
            description="one job, empty fabric",
            jobs=(JobSpec(name="job0", workers=2, epochs=2),),
        )
        driver = ClusterDriver(scenario, seed=SEED)
        report = driver.run()
        fabric_history = driver.runtimes[0].trainer.history

        baseline = _baseline_history(SEED, "job0", workers=2, epochs=2)
        assert fabric_history.to_json() == baseline.to_json()

        job = report["jobs"]["job0"]
        assert job["trim_fraction"] == 0.0
        assert job["rounds_surrendered"] == 0
        # An idle fabric drops nothing and attributes nothing.
        assert report["fabric"]["dropped"] == 0
        assert report["fabric"]["trimmed"] == 0
        assert report["attribution"] == {}


def _contended_scenario() -> ClusterScenario:
    # Both jobs pin seed_offset=0: identical data, model, codec — the
    # only difference between them is where placement puts their flows.
    return ClusterScenario(
        name="twin-jobs",
        description="two identical jobs vs an incast storm",
        jobs=(
            JobSpec(name="job0", workers=2, epochs=2, seed_offset=0),
            JobSpec(name="job1", workers=2, epochs=2, seed_offset=0),
        ),
        tenants=(
            TenantSpec(
                name="storm",
                pattern="incast",
                flows=3,
                burst_bytes=60_000,
                period_s=1e-3,
                dst_pod=1,
            ),
        ),
    )


class TestSharedCoreFairness:
    def test_identical_jobs_see_similar_trim_fractions(self):
        driver = ClusterDriver(_contended_scenario(), seed=SEED)
        report = driver.run()
        tf0 = report["jobs"]["job0"]["trim_fraction"]
        tf1 = report["jobs"]["job1"]["trim_fraction"]
        assert abs(tf0 - tf1) <= FAIRNESS_BAND
        for name in ("job0", "job1"):
            job = report["jobs"][name]
            assert job["epochs"] == 2
            assert not job["diverged"]
        assert report["fairness"]["jain_goodput"] > 0.9

    def test_attribution_owners_are_known(self):
        driver = ClusterDriver(_contended_scenario(), seed=SEED)
        report = driver.run()
        allowed = {"job0", "job1", "storm", "other"}
        assert set(report["attribution"]) <= allowed
        # The storm is the aggressor: if anything was cut, the tenant
        # must be among the owners charged for it.
        total_cut = report["fabric"]["dropped"] + report["fabric"]["trimmed"]
        if total_cut:
            charged = sum(
                v["drop"] + v["trim"] for v in report["attribution"].values()
            )
            assert charged == total_cut
            assert "storm" in report["attribution"]


class TestDeterminism:
    def test_same_seed_reports_are_equal(self):
        report_a = ClusterDriver(_contended_scenario(), seed=9).run()
        report_b = ClusterDriver(_contended_scenario(), seed=9).run()
        assert report_a == report_b

    def test_different_seeds_differ(self):
        report_a = ClusterDriver(_contended_scenario(), seed=9).run()
        report_b = ClusterDriver(_contended_scenario(), seed=10).run()
        assert report_a != report_b


class TestScenarioSpec:
    def test_round_trip(self):
        scenario = _contended_scenario()
        assert ClusterScenario.from_dict(scenario.to_dict()) == scenario

    def test_unknown_keys_rejected(self):
        data = _contended_scenario().to_dict()
        data["oversubscription"] = 4
        with pytest.raises(ValueError, match="unknown cluster scenario keys"):
            ClusterScenario.from_dict(data)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ClusterScenario(
                name="dup",
                description="",
                jobs=(JobSpec(name="a"), JobSpec(name="a")),
            )

    def test_presets_build_and_round_trip(self):
        from repro.cluster import CLUSTER_PRESETS

        for name, scenario in CLUSTER_PRESETS.items():
            assert scenario.name == name
            assert ClusterScenario.from_dict(scenario.to_dict()) == scenario
