"""Fabric self-healing at cluster scale.

The headline robustness claim: kill a core switch mid-training on the
k=4 fat-tree and the job still completes every epoch and converges —
flows reroute onto the surviving equal-cost legs (visible as
``reroutes`` and ``blackhole`` drops in the fabric report), delivered
packets keep their INT bands intact, and DGC error feedback preserves
gradient mass exactly (the telescoping invariant).
"""

from dataclasses import replace

from repro.cluster import ClusterDriver, cluster_scenario_by_name
from repro.faults import FaultInjector, FaultSpec, Scenario
from repro.faults.campaign import EF_GAP_TOLERANCE
from repro.obs.int_telemetry import (
    INTCollector,
    disable_int,
    enable_int,
    set_int_collector,
)

SEED = 5

#: Wave 1 of the seed-5 idle-1job run starts at 2.5 ms (waves are
#: deadline-chunk aligned); +5 us lands the kill while that wave's
#: gradient packets — which hash through core1 — are in flight.
KILL_AT_S = 2.5e-3 + 5e-6
KILL_FOR_S = 1e-3

#: A healed fabric must not cost accuracy: retransmissions recover every
#: blackholed packet, so the band is slack against seed jitter only.
TOP1_TOLERANCE = 0.15


def _ef_scenario():
    scenario = cluster_scenario_by_name("idle-1job")
    return replace(
        scenario, jobs=tuple(replace(job, ef=True) for job in scenario.jobs)
    )


def _run_with_kill(seed=SEED):
    driver = ClusterDriver(_ef_scenario(), seed=seed)
    fault = Scenario(
        name="core-kill",
        description="whole core switch dies mid-wave",
        faults=(
            FaultSpec(
                "switch-down", "switch:core1", start_s=KILL_AT_S, down_s=KILL_FOR_S
            ),
        ),
        duration_s=1.0,
    )
    injector = FaultInjector(driver.net, fault, root_seed=seed)
    injector.install()
    collector = INTCollector(enabled=True)
    previous = set_int_collector(collector)
    enable_int()
    try:
        report = driver.run()
    finally:
        set_int_collector(previous)
        disable_int()
    return driver, report, collector


class TestCoreSwitchKillMidTraining:
    def test_job_completes_and_converges(self):
        baseline = ClusterDriver(_ef_scenario(), seed=SEED).run()["jobs"]["job0"]
        _, report, _ = _run_with_kill()
        job = report["jobs"]["job0"]
        assert job["epochs"] == 2
        assert not job["diverged"]
        assert abs(job["final_top1"] - baseline["final_top1"]) <= TOP1_TOLERANCE

    def test_fabric_rerouted_around_the_corpse(self):
        driver, report, _ = _run_with_kill()
        fabric = report["fabric"]
        assert fabric["reroutes"] > 0
        # The stale-FIB window bites before convergence moves the flows.
        assert fabric["blackhole_drops"] > 0
        assert any(
            s.stats.drops_by_kind.get("switch-down", 0) > 0
            for s in driver.net.switches.values()
        )
        # Fully healed by the end: device revived, every FIB restored.
        assert fabric["ports_down"] == 0
        assert not any(s.failed for s in driver.net.switches.values())
        assert not any(s.ports_down for s in driver.net.switches.values())

    def test_delivered_packets_keep_int_bands(self):
        _, report, collector = _run_with_kill()
        summary = collector.summary()
        assert summary["records"] > 0
        assert summary["packets"] > 0
        # Every collected decision parses to a known name.
        assert summary["decisions"]
        assert not [d for d in summary["decisions"] if d.startswith("unknown")]

    def test_error_feedback_telescoping_survives_the_kill(self):
        driver, report, _ = _run_with_kill()
        job = report["jobs"]["job0"]
        assert job["ef"] is True
        assert job["ef_telescoping_gap"] <= EF_GAP_TOLERANCE
        assert driver.runtimes[0].hook.ef_telescoping_gap() <= EF_GAP_TOLERANCE


class TestErrorFeedbackAccounting:
    def test_ef_fields_only_when_enabled(self):
        plain = ClusterDriver(
            cluster_scenario_by_name("idle-1job"), seed=SEED
        ).run()["jobs"]["job0"]
        assert plain["ef"] is False
        assert "ef_telescoping_gap" not in plain

        ef_job = ClusterDriver(_ef_scenario(), seed=SEED).run()["jobs"]["job0"]
        assert ef_job["ef"] is True
        assert ef_job["ef_telescoping_gap"] <= EF_GAP_TOLERANCE
        assert ef_job["ef_residual_norms"]

    def test_idle_fabric_ef_matches_plain_training(self):
        """On a lossless fabric the residual is identically zero, so EF
        must not change the training arithmetic at all."""
        plain = ClusterDriver(cluster_scenario_by_name("idle-1job"), seed=SEED).run()
        with_ef = ClusterDriver(_ef_scenario(), seed=SEED).run()
        assert (
            plain["jobs"]["job0"]["top1_curve"] == with_ef["jobs"]["job0"]["top1_curve"]
        )
