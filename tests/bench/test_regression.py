"""Tests for the benchmark-regression gate (`repro-bench --compare`)."""

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.regression import (
    DEFAULT_THRESHOLD,
    MetricComparison,
    compare_files,
    compare_results,
    format_comparisons,
    load_results,
    update_baseline,
)


def write_results(path, records):
    path.write_text(json.dumps(records, indent=2) + "\n")
    return path


BASELINE = [
    {
        "experiment_id": "perf codec pipeline",
        "encode_coords_per_s": 1_000_000.0,
        "decode_coords_per_s": 2_000_000.0,
        "coords": 65536,  # informational, must not gate
    },
    {"experiment_id": "F2 layout", "trim_pct": 94.1},
]


class TestLoadResults:
    def test_keyed_by_experiment_id(self, tmp_path):
        path = write_results(tmp_path / "r.json", BASELINE)
        loaded = load_results(path)
        assert set(loaded) == {"perf codec pipeline", "F2 layout"}

    def test_rejects_non_list(self, tmp_path):
        path = write_results(tmp_path / "r.json", {"not": "a list"})
        with pytest.raises(ValueError, match="JSON list"):
            load_results(path)

    def test_rejects_record_without_id(self, tmp_path):
        path = write_results(tmp_path / "r.json", [{"x_per_s": 1.0}])
        with pytest.raises(ValueError, match="experiment_id"):
            load_results(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_results(tmp_path / "nope.json")


class TestCompareResults:
    def _by_id(self, records):
        return {r["experiment_id"]: r for r in records}

    def test_only_per_s_metrics_gate(self):
        comps = compare_results(self._by_id(BASELINE), self._by_id(BASELINE))
        assert {c.metric for c in comps} == {
            "encode_coords_per_s",
            "decode_coords_per_s",
        }
        assert all(not c.regressed and c.ratio == 1.0 for c in comps)

    def test_regression_beyond_threshold_flags(self):
        current = self._by_id(json.loads(json.dumps(BASELINE)))
        current["perf codec pipeline"]["encode_coords_per_s"] = 600_000.0  # -40%
        comps = compare_results(current, self._by_id(BASELINE), threshold=0.30)
        flagged = {c.metric: c.regressed for c in comps}
        assert flagged == {"encode_coords_per_s": True, "decode_coords_per_s": False}

    def test_drop_within_threshold_passes(self):
        current = self._by_id(json.loads(json.dumps(BASELINE)))
        current["perf codec pipeline"]["encode_coords_per_s"] = 750_000.0  # -25%
        comps = compare_results(current, self._by_id(BASELINE), threshold=0.30)
        assert not any(c.regressed for c in comps)

    def test_improvement_never_flags(self):
        current = self._by_id(json.loads(json.dumps(BASELINE)))
        current["perf codec pipeline"]["encode_coords_per_s"] = 9e9
        comps = compare_results(current, self._by_id(BASELINE))
        assert not any(c.regressed for c in comps)

    def test_empty_intersection_fails_loudly(self):
        with pytest.raises(ValueError, match="no experiments in common"):
            compare_results({"a": {"experiment_id": "a"}}, self._by_id(BASELINE))

    @pytest.mark.parametrize("threshold", [-0.1, 1.0, 2.0])
    def test_threshold_range_validated(self, threshold):
        with pytest.raises(ValueError, match="threshold"):
            compare_results(
                self._by_id(BASELINE), self._by_id(BASELINE), threshold=threshold
            )

    def test_zero_baseline_never_regresses(self):
        base = {"e": {"experiment_id": "e", "x_per_s": 0.0}}
        cur = {"e": {"experiment_id": "e", "x_per_s": 0.0}}
        (comp,) = compare_results(cur, base)
        assert not comp.regressed and comp.ratio == float("inf")

    def test_format_renders_verdicts(self):
        comps = [
            MetricComparison("e", "x_per_s", 100.0, 50.0, True),
            MetricComparison("e", "y_per_s", 100.0, 100.0, False),
        ]
        table = format_comparisons(comps)
        assert "REGRESSED" in table and "ok" in table and "0.50x" in table


class TestUpdateBaseline:
    def test_merge_preserves_absent_records(self, tmp_path):
        path = write_results(tmp_path / "b.json", BASELINE)
        update_baseline(
            path,
            {"perf codec pipeline": {"experiment_id": "perf codec pipeline", "encode_coords_per_s": 5.0}},
        )
        merged = load_results(path)
        # The perf record is replaced; the figure record survives.
        assert merged["perf codec pipeline"]["encode_coords_per_s"] == 5.0
        assert merged["F2 layout"]["trim_pct"] == 94.1

    def test_creates_missing_baseline(self, tmp_path):
        path = tmp_path / "new.json"
        update_baseline(path, {"e": {"experiment_id": "e", "x_per_s": 1.0}})
        assert load_results(path)["e"]["x_per_s"] == 1.0


class TestCompareCLI:
    def _files(self, tmp_path, current_records):
        baseline = write_results(tmp_path / "baseline.json", BASELINE)
        current = write_results(tmp_path / "current.json", current_records)
        return baseline, current

    def test_clean_compare_exits_zero(self, tmp_path):
        baseline, current = self._files(tmp_path, BASELINE)
        assert (
            main(["--compare", "--baseline", str(baseline), "--current", str(current)])
            == 0
        )

    def test_regression_exits_one(self, tmp_path):
        bad = json.loads(json.dumps(BASELINE))
        bad[0]["encode_coords_per_s"] = 1.0
        baseline, current = self._files(tmp_path, bad)
        assert (
            main(["--compare", "--baseline", str(baseline), "--current", str(current)])
            == 1
        )

    def test_missing_current_exits_two(self, tmp_path):
        baseline = write_results(tmp_path / "baseline.json", BASELINE)
        assert (
            main(
                [
                    "--compare",
                    "--baseline",
                    str(baseline),
                    "--current",
                    str(tmp_path / "absent.json"),
                ]
            )
            == 2
        )

    def test_update_baseline_blesses_regression(self, tmp_path):
        bad = json.loads(json.dumps(BASELINE))
        bad[0]["encode_coords_per_s"] = 1.0
        baseline, current = self._files(tmp_path, bad)
        argv = ["--compare", "--baseline", str(baseline), "--current", str(current)]
        assert main(argv + ["--update-baseline"]) == 0
        assert main(argv) == 0  # the bad number is now the baseline
        assert load_results(baseline)["perf codec pipeline"]["encode_coords_per_s"] == 1.0

    def test_threshold_flag_applies(self, tmp_path):
        softer = json.loads(json.dumps(BASELINE))
        softer[0]["encode_coords_per_s"] = 650_000.0  # -35%
        baseline, current = self._files(tmp_path, softer)
        argv = ["--compare", "--baseline", str(baseline), "--current", str(current)]
        assert main(argv) == 1
        assert main(argv + ["--threshold", "0.5"]) == 0

    def test_no_experiment_and_no_compare_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_compare_files_wrapper(self, tmp_path):
        baseline, current = self._files(tmp_path, BASELINE)
        comps = compare_files(current, baseline, threshold=DEFAULT_THRESHOLD)
        assert len(comps) == 2 and not any(c.regressed for c in comps)
