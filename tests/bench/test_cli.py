"""Tests for the ``python -m repro.bench`` experiment runner."""

import pytest

from repro.bench.__main__ import main


class TestCLI:
    def test_f2(self, capsys):
        assert main(["f2"]) == 0
        out = capsys.readouterr().out
        assert "F2 packet layout" in out
        assert "94.1%" in out or "94.2%" in out

    def test_t2(self, capsys):
        assert main(["t2"]) == 0
        out = capsys.readouterr().out
        assert "T2 codec NMSE" in out
        assert "heavy-tail" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "F5 per-round time breakdown" in out
        assert "baseline" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_scale_flag_sets_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert main(["f2", "--scale", "quick"]) == 0
        import os

        assert os.environ["REPRO_BENCH_SCALE"] == "quick"
