"""Smoke tests: every example script runs to completion.

The heavy training examples are exercised with reduced settings by
importing their entry modules and patching the expensive constants;
cheap examples run as-is via their ``main()``.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_required_examples_present(self):
        names = {p.stem for p in EXAMPLES.glob("*.py")}
        assert {"quickstart", "distributed_training", "congested_fabric",
                "multilevel_trimming", "record_replay", "shared_fabric"} <= names


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "compression 94" in out
        assert "rht" in out

    def test_multilevel_trimming(self, capsys):
        load_example("multilevel_trimming").main()
        out = capsys.readouterr().out
        assert "no congestion (untrimmed)" in out

    def test_record_replay(self, capsys):
        load_example("record_replay").main()
        out = capsys.readouterr().out
        assert "bit-identical: True" in out

    def test_distributed_training_reduced(self, capsys, monkeypatch):
        module = load_example("distributed_training")
        monkeypatch.setattr(module, "EPOCHS", 1)
        module.main()
        out = capsys.readouterr().out
        assert "baseline (no trim)" in out
        assert "rht" in out

    def test_congested_fabric_reduced(self, capsys, monkeypatch):
        module = load_example("congested_fabric")
        monkeypatch.setattr(module, "GRADIENT_COORDS", 50_000)
        module.main()
        out = capsys.readouterr().out
        assert "flow completion time" in out
        assert "retransmissions" in out

    def test_shared_fabric_reduced(self, capsys, monkeypatch):
        module = load_example("shared_fabric")
        monkeypatch.setattr(module, "COORDS_PER_JOB", 40_000)
        module.main()
        out = capsys.readouterr().out
        assert "job-A" in out
        assert "job-B" in out

    def test_gradient_analysis(self, capsys):
        load_example("gradient_analysis").main()
        out = capsys.readouterr().out
        assert "heavy-tail index" in out
        assert "rht" in out

    def test_observability_demo_reduced(self, capsys, monkeypatch):
        module = load_example("observability_demo")
        monkeypatch.setattr(module, "GRADIENT_COORDS", 50_000)
        module.main()
        out = capsys.readouterr().out
        assert "trim fraction" in out
        assert "-- metrics snapshot --" in out
        assert "repro-report" in out
