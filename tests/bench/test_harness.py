"""Tests for the benchmark harness utilities."""

import numpy as np
import pytest

from repro.bench import ExperimentResult, ascii_chart, bench_scale, format_table
from repro.bench.experiments import f2_layout, t2_codec_nmse, trim_rates


class TestBenchScale:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "quick"

    def test_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "FULL")
        assert bench_scale() == "full"

    def test_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            bench_scale()

    def test_trim_rates_widen_at_full_scale(self):
        assert len(trim_rates("full")) > len(trim_rates("quick"))
        assert 0.5 in trim_rates("quick")
        assert 0.001 in trim_rates("full")


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.startswith("T\n")

    def test_ascii_chart_contains_all_series(self):
        chart = ascii_chart(
            {"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]}
        )
        assert "o=one" in chart
        assert "x=two" in chart

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_ascii_chart_single_point(self):
        chart = ascii_chart({"p": [(1.0, 2.0)]})
        assert "o" in chart

    def test_experiment_result_render(self):
        result = ExperimentResult("X1", ["col"], [[1]], notes="hello")
        text = result.render()
        assert "[X1]" in text
        assert "hello" in text


class TestLightExperiments:
    def test_f2_layout_reproduces_paper_numbers(self):
        result = f2_layout()
        paper = result.rows[0]
        assert paper[2] in (364, 365)
        assert abs(paper[3] - 87) <= 1

    def test_t2_nmse_well_formed(self):
        result = t2_codec_nmse(num_coords=2**13)
        assert len(result.rows) == 8  # 2 inputs x 4 rates
        for row in result.rows:
            for value in row[2:]:
                assert float(value) >= 0.0


class TestJsonExport:
    def test_to_json_round_trips(self):
        import json

        result = ExperimentResult(
            "X2", ["name", "value"], [["a", 1.5], ["b", 2]], notes="n"
        )
        payload = json.loads(result.to_json())
        assert payload["experiment_id"] == "X2"
        assert payload["rows"] == [["a", 1.5], ["b", 2]]
        assert payload["notes"] == "n"

    def test_to_json_handles_numpy_scalars(self):
        import json
        import numpy as np

        result = ExperimentResult("X3", ["v"], [[np.float64(0.25)], [np.int64(4)]])
        payload = json.loads(result.to_json())
        assert payload["rows"] == [[0.25], [4]]


class TestTrainingSweepMachinery:
    def test_run_training_returns_history_and_caches(self):
        from repro.bench.experiments import run_training

        first = run_training("sd", 0.1, 1)
        second = run_training("sd", 0.1, 1)
        assert first is second  # lru-cached: fig3 and fig4 share sweeps
        assert len(first.records) == 1
        assert 0.0 <= first.final_top1 <= 1.0

    def test_baseline_run_has_no_trimming(self):
        from repro.bench.experiments import run_training

        history = run_training(None, 0.0, 1)
        assert history.records[-1].trim_fraction == 0.0
