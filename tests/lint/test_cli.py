"""CLI behaviour of ``repro-lint`` and the repo-wide meta-check."""

import json
from pathlib import Path

import pytest

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "repro"
REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_FIXTURES = [
    "core/bad_randomness.py",
    "net/bad_wallclock.py",
    "core/bad_codec_contract.py",
    "core/bad_float_eq.py",
    "core/bad_mutable_default.py",
    "core/bad_print.py",
    "core/bad_float_identity.py",
    "core/bad_units.py",
    "net/bad_taint.py",
    "packet/bad_typestate.py",
]


@pytest.mark.parametrize("fixture", BAD_FIXTURES)
def test_bad_fixture_exits_nonzero(fixture, capsys):
    assert main([str(FIXTURES / fixture)]) == 1
    out = capsys.readouterr().out
    assert "error[" in out
    assert "finding(s)" in out


def test_warning_severity_fixture_still_gates(capsys):
    assert main([str(FIXTURES / "net" / "bad_simcb.py")]) == 1
    assert "warning[sim-callback-write]" in capsys.readouterr().out


def test_good_fixture_exits_zero(capsys):
    assert main([str(FIXTURES / "core" / "good_randomness.py")]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_suppressed_fixture_exits_zero(capsys):
    assert main([str(FIXTURES / "core" / "suppressed_print.py")]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_directory_lint_collects_all_bad_fixtures(capsys):
    assert main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    for fixture in BAD_FIXTURES:
        assert fixture.rsplit("/", 1)[1] in out


def test_select_restricts_rules(capsys):
    bad = str(FIXTURES / "core" / "bad_print.py")
    assert main(["--select", "float-eq", bad]) == 0
    assert main(["--select", "print-call", bad]) == 1


def test_ignore_drops_rules(capsys):
    bad = str(FIXTURES / "core" / "bad_print.py")
    assert main(["--ignore", "print-call", bad]) == 0


def test_unknown_rule_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "no-such-rule", str(FIXTURES)])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main([str(FIXTURES / "does_not_exist.py")])
    assert excinfo.value.code == 2


def test_json_format(capsys):
    assert main(["--format", "json", str(FIXTURES / "core" / "bad_float_eq.py")]) == 1
    records = json.loads(capsys.readouterr().out)
    assert records
    assert {record["rule"] for record in records} == {"float-eq"}
    for record in records:
        assert set(record) == {"rule", "path", "line", "col", "message", "severity", "hint"}


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in (
        "bare-randomness",
        "wall-clock-in-sim",
        "codec-contract",
        "float-eq",
        "mutable-default",
        "print-call",
    ):
        assert name in out


def test_repo_source_tree_is_clean(capsys):
    """Meta-check: ``repro-lint src/repro`` must pass on the repo itself."""
    package = REPO_ROOT / "src" / "repro"
    assert package.is_dir()
    assert main([str(package)]) == 0, capsys.readouterr().out


def test_mypy_strict_core_passes():
    """Strict-core type check, run only where mypy is installed (CI lint job)."""
    mypy_api = pytest.importorskip("mypy.api")
    stdout, stderr, status = mypy_api.run(
        [
            "-p", "repro.core",
            "-p", "repro.packet",
            "-p", "repro.transforms",
            "-p", "repro.lint",
            "-p", "repro.faults",
            "-p", "repro.transport",
        ]
    )
    assert status == 0, stdout + stderr
