"""Unit tests for the engine upgrades: cache, baseline, and SARIF."""

from repro.lint import ALL_RULES, Finding, LintEngine
from repro.lint.baseline import Baseline, BaselineEntry, finding_fingerprint
from repro.lint.cache import LintCache, file_digest, rules_signature
from repro.lint.engine import Rule
from repro.lint.sarif import to_sarif


def make_finding(rule="print-call", path="core/x.py", line=3, message="print() call"):
    return Finding(rule=rule, path=path, line=line, col=1, message=message)


# -- cache ---------------------------------------------------------------------


def test_cache_roundtrip(tmp_path):
    cache_path = tmp_path / "cache.json"
    signature = rules_signature(ALL_RULES)
    cache = LintCache(cache_path, signature)
    target = tmp_path / "mod.py"
    target.write_text("print(1)\n", encoding="utf-8")
    digest = file_digest(target)
    finding = make_finding(path=str(target))

    assert cache.get(target, digest) is None  # cold miss
    cache.put(target, digest, [finding])
    cache.save()

    reloaded = LintCache.load(cache_path, signature)
    assert reloaded.get(target, digest) == [finding]
    assert reloaded.hits == 1


def test_cache_misses_on_content_change(tmp_path):
    cache_path = tmp_path / "cache.json"
    signature = rules_signature(ALL_RULES)
    cache = LintCache(cache_path, signature)
    target = tmp_path / "mod.py"
    target.write_text("print(1)\n", encoding="utf-8")
    cache.put(target, file_digest(target), [])
    cache.save()

    target.write_text("print(2)\n", encoding="utf-8")
    reloaded = LintCache.load(cache_path, signature)
    assert reloaded.get(target, file_digest(target)) is None


def test_cache_invalidated_by_rule_version_bump(tmp_path):
    class FakeRule(Rule):
        name = "fake"
        version = 1

    class FakeRuleV2(Rule):
        name = "fake"
        version = 2

    sig_v1 = rules_signature([FakeRule()])
    sig_v2 = rules_signature([FakeRuleV2()])
    assert sig_v1 != sig_v2

    cache_path = tmp_path / "cache.json"
    cache = LintCache(cache_path, sig_v1)
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    digest = file_digest(target)
    cache.put(target, digest, [])
    cache.save()

    stale = LintCache.load(cache_path, sig_v2)
    assert stale.get(target, digest) is None, "version bump must drop cached findings"


def test_cache_corrupt_file_yields_empty(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("not json{", encoding="utf-8")
    cache = LintCache.load(cache_path, rules_signature(ALL_RULES))
    assert cache.get(tmp_path / "mod.py", "0" * 64) is None


def test_cache_prune_drops_unlisted_files(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache = LintCache(cache_path, "sig")
    keep = tmp_path / "keep.py"
    drop = tmp_path / "drop.py"
    for target in (keep, drop):
        target.write_text("x = 1\n", encoding="utf-8")
        cache.put(target, file_digest(target), [])
    cache.prune([keep])
    assert cache.get(keep, file_digest(keep)) == []
    assert cache.get(drop, file_digest(drop)) is None


# -- baseline ------------------------------------------------------------------


def test_fingerprint_is_line_independent():
    a = make_finding(line=3)
    b = make_finding(line=300)
    assert finding_fingerprint(a) == finding_fingerprint(b)
    c = make_finding(message="different message")
    assert finding_fingerprint(a) != finding_fingerprint(c)


def test_fingerprint_uses_package_relative_path():
    a = make_finding(path="src/repro/core/x.py")
    b = make_finding(path="fixtures/repro/core/x.py")
    assert finding_fingerprint(a) == finding_fingerprint(b)


def test_baseline_apply_splits_new_accepted_stale():
    accepted_finding = make_finding()
    new_finding = make_finding(message="something else")
    baseline = Baseline(
        [
            BaselineEntry(fingerprint=finding_fingerprint(accepted_finding)),
            BaselineEntry(fingerprint="deadbeef" * 2 + "dead"),
        ]
    )
    new, accepted, stale = baseline.apply([accepted_finding, new_finding])
    assert new == [new_finding]
    assert accepted == [accepted_finding]
    assert [entry.fingerprint for entry in stale] == ["deadbeef" * 2 + "dead"]


def test_baseline_save_load_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    finding = make_finding()
    baseline = Baseline.from_findings([finding], justification="deliberate: test")
    baseline.save(path)
    reloaded = Baseline.load(path)
    assert len(reloaded) == 1
    entry = next(iter(reloaded.entries.values()))
    assert entry.fingerprint == finding_fingerprint(finding)
    assert entry.justification == "deliberate: test"


def test_baseline_rejects_malformed(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"schema": 99}', encoding="utf-8")
    try:
        Baseline.load(path)
    except ValueError:
        pass
    else:
        raise AssertionError("malformed baseline must raise ValueError")


# -- SARIF ---------------------------------------------------------------------


def test_sarif_document_structure(tmp_path):
    findings = [make_finding(path=str(tmp_path / "core" / "x.py"))]
    document = to_sarif(findings, ALL_RULES, root=tmp_path)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert {rule["id"] for rule in driver["rules"]} >= {r.name for r in ALL_RULES}
    result = run["results"][0]
    assert result["ruleId"] == "print-call"
    assert result["level"] == "error"
    assert result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"] == "core/x.py"
    assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 3
    assert result["partialFingerprints"]["reproLint/v1"] == finding_fingerprint(findings[0])


def test_sarif_rule_index_matches_descriptor():
    finding = make_finding(rule="float-eq", message="exact float comparison")
    document = to_sarif([finding], ALL_RULES)
    run = document["runs"][0]
    result = run["results"][0]
    descriptors = run["tool"]["driver"]["rules"]
    assert descriptors[result["ruleIndex"]]["id"] == "float-eq"


def test_sarif_unknown_rule_gets_descriptor():
    finding = Finding(
        rule="parse-error", path="core/broken.py", line=1, col=1, message="cannot parse"
    )
    document = to_sarif([finding], ALL_RULES)
    run = document["runs"][0]
    descriptors = run["tool"]["driver"]["rules"]
    assert any(rule["id"] == "parse-error" for rule in descriptors)
    assert run["results"][0]["ruleIndex"] == len(descriptors) - 1


def test_sarif_warning_severity_maps_to_level():
    finding = Finding(
        rule="sim-callback-write",
        path="net/x.py",
        line=2,
        col=1,
        message="callback writes module state",
        severity="warning",
    )
    document = to_sarif([finding], ALL_RULES)
    assert document["runs"][0]["results"][0]["level"] == "warning"


def test_lint_results_are_reproducible_for_caching(tmp_path):
    """Same bytes → identical findings: the property the cache relies on."""
    target = tmp_path / "repro" / "core" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("def f(v):\n    print(v)\n", encoding="utf-8")
    engine = LintEngine(ALL_RULES)
    assert engine.lint_file(target) == engine.lint_file(target)
