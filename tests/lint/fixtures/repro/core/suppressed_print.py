"""Fixture: a deliberate print() covered by a suppression comment."""


def report(value):
    print("value:", value)  # repro-lint: disable=print-call
