"""Fixture: arithmetic and comparisons mixing bits with bytes."""


def header_budget(header_bytes, keep_bits):
    return header_bytes + keep_bits


def fits(wire_size, budget_bits):
    return wire_size <= budget_bits


def payload_budget(payload, keep_bits):
    return len(payload) + keep_bits
