"""Fixture: != and is/is not comparisons against float literals."""


def drifted(ratio):
    return ratio != 0.25


def pinned(scale):
    return scale is 1.0


def not_pinned(scale):
    return scale is not 0.5
