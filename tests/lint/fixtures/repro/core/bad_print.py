"""Fixture: print() in library code."""


def report(value):
    print("value:", value)
