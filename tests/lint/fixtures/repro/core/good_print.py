"""Fixture: library output through logging."""

import logging

logger = logging.getLogger(__name__)


def report(value):
    logger.info("value: %s", value)
