"""Fixture: ad-hoc randomness on the shared-randomness code path."""

import numpy as np


def noisy(x):
    rng = np.random.default_rng()
    return x + np.random.rand(4) + rng.standard_normal(4)
