"""Fixture: identity against None and integer equality stay legal."""


def missing(value):
    return value is None


def present(value):
    return value is not None


def count_done(completed):
    return completed == 3
