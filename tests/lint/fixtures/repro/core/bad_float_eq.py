"""Fixture: exact float comparison in a numeric module."""


def is_zero(scale: float) -> bool:
    return scale == 0.0


def nonzero(scale: float) -> bool:
    return scale != -1.0
