"""Fixture: registered codec satisfying the full contract."""

from repro.core.codec import register_codec


@register_codec
class FineCodec:
    name = "fine"
    codec_id = 98

    def encode(self, flat, epoch, message_id):
        return flat

    def decode(self, encoded):
        return encoded
