"""Fixture: registered codec missing decode() and its literal name."""

from repro.core.codec import register_codec


@register_codec
class BrokenCodec:
    codec_id = 99

    def encode(self, flat, epoch, message_id):
        return flat
