"""Fixture: tolerance / ordering tests instead of exact float equality."""

import numpy as np


def is_zero(scale: float) -> bool:
    return scale <= 0.0


def close(a: float, b: float) -> bool:
    return bool(np.isclose(a, b, atol=1e-12))
