"""Fixture: explicit conversions keep bit/byte arithmetic legal."""


def header_budget(header_bytes, keep_bits):
    return header_bytes * 8 + keep_bits


def fits(wire_size, budget_bits):
    return wire_size <= budget_bits // 8


def same_unit(left_bytes, right_bytes):
    return left_bytes + right_bytes


def unitless(count, total):
    return count / total
