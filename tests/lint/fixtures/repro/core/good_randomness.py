"""Fixture: randomness routed through the sanctioned prng streams."""

from repro.transforms.prng import shared_generator


def noisy(x, seed: int):
    rng = shared_generator(seed, purpose="dither")
    return x + rng.standard_normal(4)
