"""Fixture: None defaults built inside the function body."""


def collect(value, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(value)
    return bucket
