"""Fixture: the sanctioned Packet lifecycle, clean under every rule."""

from repro.packet.packet import Packet


def build_trim_seal_send(host):
    pkt = Packet(src="a", dst="b", payload=b"\x01" * 64)
    pkt.trim()
    pkt.seal()
    host.send(pkt)


def receive_verify_use(pkt):
    if not pkt.verify():
        return None
    return pkt.payload


def switch_trims_received(pkt):
    # Received packets have unknown provenance: trimming them is the
    # switch's job and must not be flagged.
    pkt.trim()
    return pkt


def branch_join_is_not_flagged(host, flag):
    pkt = Packet(src="a", dst="b", payload=b"\x01")
    if flag:
        pkt.seal()
    # State is BUILT-or-SEALED here; the analysis must not guess.
    pkt.trim()
    return pkt
