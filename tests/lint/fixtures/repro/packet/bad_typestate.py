"""Fixture: every packet-typestate violation in one module."""

from repro.packet.packet import Packet
from repro.packet.trim import trim_to_bits


def trims_after_seal():
    pkt = Packet(src="a", dst="b", payload=b"\x01" * 64)
    pkt.seal()
    pkt.trim()
    return pkt


def seals_twice():
    pkt = Packet(src="a", dst="b", payload=b"\x01")
    pkt.seal()
    pkt.seal()
    return pkt


def mutates_after_seal():
    pkt = Packet(src="a", dst="b", payload=b"\x01")
    pkt.seal()
    pkt.payload = b"\x02"
    return pkt


def trims_to_bits_after_seal():
    pkt = Packet(src="a", dst="b", payload=b"\x01" * 64)
    pkt.seal()
    trim_to_bits(pkt, 128)
    return pkt


def sends_unsealed(host):
    pkt = Packet(src="a", dst="b", payload=b"\x01")
    host.send(pkt)


def discards_verify(pkt):
    pkt.verify()
    return pkt
