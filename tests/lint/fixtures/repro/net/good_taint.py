"""Fixture: sanctioned shared randomness feeding the event loop."""

from repro.transforms.prng import shared_generator


class BackgroundFlow:
    def __init__(self, sim, seed):
        self.sim = sim
        self._rng = shared_generator(seed, purpose="crosstraffic")

    def start(self):
        delay = self._rng.exponential(1e-3)
        self.sim.schedule(delay, self.start)

    def tick(self):
        delay = self._rng.exponential(1e-3)
        self.sim.schedule_call(delay, BackgroundFlow.tick, self)
