"""Fixture: wall-clock read inside sim-time code."""

import time


def timestamp():
    return time.time()
