"""Fixture: callback state lives on the scheduling object, not the module."""


class Watcher:
    def __init__(self, sim):
        self.sim = sim
        self.pending = {}

    def watch(self, flow_id):
        self.sim.schedule(0.001, lambda: self._record(flow_id))

    def _record(self, flow_id):
        self.pending[flow_id] = self.sim.now
