"""Fixture: a network sink using arena packets by the ownership rules."""


class CleanSink:
    def __init__(self, sim, pool, nic):
        self.sim = sim
        self.pool = pool
        self.nic = nic
        self.sent = 0

    def emit(self, src, dst, payload, flow_id):
        packet = self.pool.acquire_filler(src, dst, payload, flow_id)
        if not self.nic.send(packet):
            self.pool.release_transient(packet)
        self.sent += 1

    def emit_scalars(self, src, dst, payload, flow_id):
        packet = self.pool.acquire_filler(src, dst, payload, flow_id)
        size = packet.wire_size  # copying fields out is fine
        self.nic.send(packet)
        return size
