"""Fixture: event-loop callback mutating module-level shared state."""

PENDING = {}
SEEN = []


def watch(sim, flow_id):
    def fire():
        PENDING[flow_id] = sim.now
        SEEN.append(flow_id)

    sim.schedule(0.001, fire)
