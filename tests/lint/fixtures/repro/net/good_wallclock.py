"""Fixture: sim-time derived from the event loop."""


def timestamp(sim):
    return sim.now
