"""Fixture: a network sink retaining arena-acquired packets."""


class LeakySink:
    def __init__(self, sim, pool):
        self.sim = sim
        self.pool = pool
        self.stash = []
        self.last = None

    def emit(self, src, dst, payload, flow_id):
        packet = self.pool.acquire_filler(src, dst, payload, flow_id)
        self.last = packet  # retained: aliases a recycled object later
        self.stash.append(packet)  # retained in a container

    def emit_control(self, src, dst):
        self.last = self.pool.acquire(src=src, dst=dst, is_ack=True)
