"""Fixture: ad-hoc randomness flowing into the event loop across methods."""

import numpy as np


class BackgroundFlow:
    def __init__(self, sim, seed):
        self.sim = sim
        self._rng = np.random.default_rng(seed)

    def start(self):
        delay = self._rng.exponential(1e-3)
        self.sim.schedule(delay, self.start)

    def tick(self):
        delay = self._rng.exponential(1e-3)
        self.sim.schedule_call(delay, BackgroundFlow.tick, self)

    def burst(self):
        delay = self._rng.exponential(1e-3)
        self.sim.schedule_batch([(delay, BackgroundFlow.burst, self)])
