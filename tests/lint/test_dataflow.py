"""Unit tests for the flow-aware layer: taint, typestate, and units.

These drive the dataflow engine through ``LintEngine.lint_text`` with
package-relative paths (so scoping matches ``src/repro``) plus a few
direct API tests of :mod:`repro.lint.dataflow` itself.
"""

import ast
import textwrap

import pytest

from repro.lint import ALL_RULES, LintEngine
from repro.lint.dataflow import (
    ImportTracker,
    PacketStateFlow,
    TaintFlow,
    iter_flow_scopes,
)

ENGINE = LintEngine(ALL_RULES)


def findings_for(rule: str, source: str, rel: str):
    return [
        f for f in ENGINE.lint_text(textwrap.dedent(source), rel=rel) if f.rule == rule
    ]


# -- nondeterminism-taint: one case per source/sink pair ----------------------

TAINT_SOURCES_REACHING_SCHEDULE = [
    (
        "stdlib-random",
        """
        import random

        def go(sim):
            delay = random.random()
            sim.schedule(delay, go)
        """,
    ),
    (
        "wall-clock",
        """
        import time

        def go(sim):
            deadline = time.monotonic()
            sim.schedule_at(deadline, go)
        """,
    ),
    (
        "set-iteration-order",
        """
        def go(sim, peers):
            order = set(peers)
            for peer in order:
                sim.schedule(peer, go)
        """,
    ),
    (
        "propagated-through-arithmetic",
        """
        import random

        def go(sim):
            jitter = random.uniform(0.0, 1.0)
            delay = 1e-3 + jitter * 2.0
            sim.schedule(delay, go)
        """,
    ),
]


@pytest.mark.parametrize(
    "label,source", TAINT_SOURCES_REACHING_SCHEDULE, ids=lambda v: v if isinstance(v, str) else ""
)
def test_taint_reaches_event_loop(label, source):
    found = findings_for("nondeterminism-taint", source, rel="net/x.py")
    assert found, f"{label}: taint should reach the schedule sink"
    assert "shared_generator" in found[0].message


def test_hash_taint_reaches_payload_sink():
    source = """
    def build(key):
        flow_id = hash(key)
        return Packet(src="a", dst="b", payload=flow_id)
    """
    found = findings_for("nondeterminism-taint", source, rel="net/x.py")
    assert found
    assert "hash()" in found[0].message
    assert "payload" in found[0].message


def test_urandom_taint_reaches_codec_state():
    source = """
    import os

    class NoiseCodec:
        def __init__(self):
            self._salt = os.urandom(8)
    """
    found = findings_for("nondeterminism-taint", source, rel="core/x.py")
    assert found
    assert "os.urandom" in found[0].message
    assert "codec state self._salt" in found[0].message


def test_cross_method_taint_through_self_attribute():
    source = """
    import numpy as np

    class Flow:
        def __init__(self, sim, seed):
            self.sim = sim
            self._rng = np.random.default_rng(seed)

        def start(self):
            self.sim.schedule(self._rng.exponential(1e-3), self.start)
    """
    found = findings_for("nondeterminism-taint", source, rel="net/x.py")
    assert found, "self-attribute taint must cross method boundaries"


TAINT_CLEAN_CASES = [
    (
        "shared-generator-sanitizes",
        """
        from repro.transforms.prng import shared_generator

        def go(sim, seed):
            rng = shared_generator(seed, purpose="crosstraffic")
            sim.schedule(rng.exponential(1e-3), go)
        """,
    ),
    (
        "spawn-sanitizes",
        """
        def go(sim, stream_key):
            rng = stream_key.spawn()
            sim.schedule(rng.uniform(0.0, 1.0), go)
        """,
    ),
    (
        "sorted-set-iteration-is-deterministic",
        """
        def go(sim, peers):
            for peer in sorted(set(peers)):
                sim.schedule(peer, go)
        """,
    ),
    (
        "len-of-set-is-deterministic",
        """
        def go(sim, peers):
            fanout = len(set(peers))
            sim.schedule(fanout * 1e-6, go)
        """,
    ),
    (
        "clean-parameter",
        """
        def go(sim, delay):
            sim.schedule(delay, go)
        """,
    ),
]


@pytest.mark.parametrize(
    "label,source", TAINT_CLEAN_CASES, ids=lambda v: v if isinstance(v, str) else ""
)
def test_taint_clean_cases(label, source):
    assert findings_for("nondeterminism-taint", source, rel="net/x.py") == []


# -- packet-typestate: orderings ----------------------------------------------


def typestate_kinds(source: str):
    found = findings_for("packet-typestate", source, rel="packet/x.py")
    return [f.message.split(":", 1)[0] for f in found]


def test_trim_after_seal_ordering():
    kinds = typestate_kinds(
        """
        def emit(host):
            pkt = Packet(src="a", dst="b", payload=b"x" * 64)
            pkt.seal()
            pkt.trim()
        """
    )
    assert kinds == ["trim on a sealed packet"]


def test_verify_skip_is_flagged():
    kinds = typestate_kinds(
        """
        def receive(pkt):
            pkt.verify()
            return pkt.payload
        """
    )
    assert kinds == ["verify() verdict discarded"]


def test_verify_used_in_condition_is_clean():
    assert (
        typestate_kinds(
            """
        def receive(pkt):
            if not pkt.verify():
                return None
            return pkt.payload
        """
        )
        == []
    )


def test_received_packet_trim_is_switch_legal():
    assert (
        typestate_kinds(
            """
        def forward(pkt):
            pkt.trim()
            return pkt
        """
        )
        == []
    )


def test_branch_join_degrades_to_unknown():
    assert (
        typestate_kinds(
            """
        def emit(host, flag):
            pkt = Packet(src="a", dst="b", payload=b"x")
            if flag:
                pkt.seal()
            pkt.trim()
        """
        )
        == []
    )


def test_empty_packet_send_without_seal_is_clean():
    assert (
        typestate_kinds(
            """
        def probe(host):
            pkt = Packet(src="a", dst="b")
            host.send(pkt)
        """
        )
        == []
    )


# -- bits-bytes: true and false positives -------------------------------------


def unit_findings(source: str):
    return findings_for("bits-bytes", source, rel="packet/x.py")


def test_mixed_unit_arithmetic_is_flagged():
    assert unit_findings("def f(header_bytes, keep_bits):\n    return header_bytes + keep_bits\n")


def test_mixed_unit_comparison_is_flagged():
    assert unit_findings("def f(wire_size, budget_bits):\n    return wire_size < budget_bits\n")


def test_len_of_payload_is_bytes():
    assert unit_findings("def f(payload, keep_bits):\n    return len(payload) + keep_bits\n")


def test_explicit_conversion_is_clean():
    assert unit_findings("def f(n_bytes, k_bits):\n    return n_bytes * 8 + k_bits\n") == []
    assert unit_findings("def f(wire_size, k_bits):\n    return wire_size >= k_bits // 8\n") == []


def test_same_unit_and_unitless_are_clean():
    assert unit_findings("def f(a_bytes, b_bytes):\n    return a_bytes + b_bytes\n") == []
    assert unit_findings("def f(count, total):\n    return count / total\n") == []


def test_unit_propagates_through_assignment():
    source = """
    def f(wire_size, budget_bits):
        occupancy = wire_size
        return occupancy + budget_bits
    """
    assert unit_findings(source)


# -- dataflow API --------------------------------------------------------------


def test_iter_flow_scopes_covers_module_functions_and_methods():
    tree = ast.parse(
        "x = 1\n"
        "def top():\n    pass\n"
        "class Box:\n"
        "    def method(self):\n        pass\n"
    )
    scopes = list(iter_flow_scopes(tree))
    names = {(scope.name, scope.class_name) for scope in scopes}
    assert ("top", None) in names
    assert ("Box.method", "Box") in names
    assert any(scope.node is tree for scope in scopes), "module scope must be included"


def test_taintflow_env_propagation():
    tree = ast.parse("import random\n\ndef f():\n    a = random.random()\n    b = a + 1\n")
    tracker = ImportTracker(tree)
    scope = next(s for s in iter_flow_scopes(tree) if s.name == "f")
    env = TaintFlow(tracker.resolve_call).run(scope)
    kinds_a = {t.kind for t in env["a"]}
    kinds_b = {t.kind for t in env["b"]}
    assert kinds_a == {"randomness"}
    assert kinds_b == {"randomness"}, "taint must survive arithmetic"


def test_packetstateflow_emits_ordered_events():
    tree = ast.parse(
        "def f(host):\n"
        "    p = Packet(src='a', dst='b', payload=b'x')\n"
        "    p.seal()\n"
        "    p.seal()\n"
        "    p.trim()\n"
    )
    tracker = ImportTracker(tree)
    scope = next(s for s in iter_flow_scopes(tree) if s.name == "f")
    events = PacketStateFlow(tracker.resolve_call).run(scope)
    assert [e.kind for e in events] == ["double-seal", "trim-after-seal"]
