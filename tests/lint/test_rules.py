"""Per-rule fixture tests for the repro-lint engine.

Each rule gets a *bad* fixture that must trip it and a *good* fixture
that must stay clean under every rule.  Fixtures live in a tree that
mimics the package layout (``fixtures/repro/core/...``) so the
path-scoped rules fire exactly as they would on ``src/repro``.
"""

from pathlib import Path

import pytest

from repro.lint import ALL_RULES, LintEngine, package_relative
from repro.lint.engine import SourceModule

FIXTURES = Path(__file__).parent / "fixtures" / "repro"

ENGINE = LintEngine(ALL_RULES)


def lint_fixture(name: str):
    return ENGINE.lint_file(FIXTURES / name)


def rule_names(findings) -> set:
    return {finding.rule for finding in findings}


BAD_FIXTURES = [
    ("core/bad_randomness.py", "bare-randomness"),
    ("net/bad_wallclock.py", "wall-clock-in-sim"),
    ("core/bad_codec_contract.py", "codec-contract"),
    ("core/bad_float_eq.py", "float-eq"),
    ("core/bad_mutable_default.py", "mutable-default"),
    ("core/bad_print.py", "print-call"),
    ("core/bad_float_identity.py", "float-eq"),
    ("core/bad_units.py", "bits-bytes"),
    ("net/bad_taint.py", "nondeterminism-taint"),
    ("net/bad_simcb.py", "sim-callback-write"),
    ("packet/bad_typestate.py", "packet-typestate"),
    ("net/bad_arena_retention.py", "pooled-packet-retention"),
]

GOOD_FIXTURES = [
    "core/good_randomness.py",
    "net/good_wallclock.py",
    "core/good_codec_contract.py",
    "core/good_float_eq.py",
    "core/good_mutable_default.py",
    "core/good_print.py",
    "core/good_float_identity.py",
    "core/good_units.py",
    "net/good_taint.py",
    "net/good_simcb.py",
    "packet/good_typestate.py",
    "net/good_arena_retention.py",
]


@pytest.mark.parametrize("fixture,rule", BAD_FIXTURES)
def test_bad_fixture_trips_rule(fixture, rule):
    findings = lint_fixture(fixture)
    assert rule in rule_names(findings), f"{fixture} should trip {rule}"
    for finding in findings:
        assert finding.line >= 1
        assert finding.col >= 1
        assert fixture.rsplit("/", 1)[1] in finding.path


@pytest.mark.parametrize("fixture", GOOD_FIXTURES)
def test_good_fixture_is_clean(fixture):
    assert lint_fixture(fixture) == []


def test_bad_randomness_flags_both_forms():
    findings = lint_fixture("core/bad_randomness.py")
    messages = " ".join(f.message for f in findings)
    assert "default_rng" in messages
    assert "numpy.random.rand" in messages


def test_bad_codec_contract_details():
    findings = lint_fixture("core/bad_codec_contract.py")
    messages = " ".join(f.message for f in findings)
    assert "decode()" in messages
    assert "`name`" in messages
    # codec_id = 99 is present and literal, so only two findings.
    assert len(findings) == 2


def test_findings_carry_hints_and_format():
    findings = lint_fixture("core/bad_print.py")
    assert findings, "fixture should produce findings"
    text = findings[0].format()
    assert "error[print-call]" in text
    assert "bad_print.py" in text
    assert "hint:" in text


def test_line_suppression_comment():
    assert lint_fixture("core/suppressed_print.py") == []


def test_file_level_suppression():
    source = (
        "# repro-lint: disable-file=print-call\n"
        "def report(value):\n"
        "    print(value)\n"
        "    print(value)\n"
    )
    assert ENGINE.lint_text(source, rel="core/x.py") == []


def test_disable_all_wildcard():
    source = "import time\nnow = time.time()  # repro-lint: disable=all\n"
    assert ENGINE.lint_text(source, rel="net/x.py") == []


def test_suppression_only_covers_named_rule():
    source = "def report(value):\n    print(value)  # repro-lint: disable=float-eq\n"
    findings = ENGINE.lint_text(source, rel="core/x.py")
    assert rule_names(findings) == {"print-call"}


def test_scoping_keeps_rules_in_their_packages():
    wallclock = "import time\nnow = time.time()\n"
    # wall-clock-in-sim is scoped to net/, transport/ and faults/: core/ is fine.
    assert ENGINE.lint_text(wallclock, rel="core/x.py") == []
    assert rule_names(ENGINE.lint_text(wallclock, rel="net/x.py")) == {"wall-clock-in-sim"}
    assert rule_names(ENGINE.lint_text(wallclock, rel="faults/x.py")) == {"wall-clock-in-sim"}

    bare = "import numpy as np\nrng = np.random.default_rng(1)\n"
    # bare-randomness covers the fault-injection package: seeded faults
    # must come from shared_generator, never an ad-hoc generator.
    assert rule_names(ENGINE.lint_text(bare, rel="faults/x.py")) == {"bare-randomness"}

    floats = "ok = value == 0.5\n"
    # float-eq is scoped to the numeric modules, not e.g. obs/.
    assert ENGINE.lint_text(floats, rel="obs/x.py") == []
    assert rule_names(ENGINE.lint_text(floats, rel="core/x.py")) == {"float-eq"}


def test_prng_module_is_exempt_from_bare_randomness():
    source = "import numpy as np\nrng = np.random.default_rng(1234)\n"
    assert ENGINE.lint_text(source, rel="transforms/prng.py") == []
    assert rule_names(ENGINE.lint_text(source, rel="transforms/dither.py")) == {
        "bare-randomness"
    }


def test_import_alias_resolution():
    source = "from numpy import random as npr\nx = npr.rand(3)\n"
    assert rule_names(ENGINE.lint_text(source, rel="core/x.py")) == {"bare-randomness"}
    source = "from time import monotonic as clock\nt = clock()\n"
    assert rule_names(ENGINE.lint_text(source, rel="net/x.py")) == {"wall-clock-in-sim"}


def test_package_relative():
    assert package_relative(Path("src/repro/core/codec.py")) == "core/codec.py"
    assert (
        package_relative(Path("tests/lint/fixtures/repro/net/bad_wallclock.py"))
        == "net/bad_wallclock.py"
    )
    assert package_relative(Path("standalone.py")) == "standalone.py"


def test_parse_error_becomes_finding(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n", encoding="utf-8")
    findings = ENGINE.lint_file(broken)
    assert rule_names(findings) == {"parse-error"}
    assert findings[0].line >= 1


def test_source_module_records_suppressions():
    module = SourceModule.parse(
        "# repro-lint: disable-file=float-eq\nx = 1  # repro-lint: disable=print-call\n"
    )
    assert module.file_suppressions == frozenset({"float-eq"})
    assert module.line_suppressions[2] == frozenset({"print-call"})


def test_taint_covers_fast_path_scheduling_apis():
    """schedule_call / schedule_batch are event-loop sinks like schedule."""
    findings = lint_fixture("net/bad_taint.py")
    sinks = " ".join(f.message for f in findings)
    assert "schedule() on the event loop" in sinks
    assert "schedule_call() on the event loop" in sinks
    assert "schedule_batch() on the event loop" in sinks


def test_arena_retention_details():
    findings = [
        f for f in lint_fixture("net/bad_arena_retention.py")
        if f.rule == "pooled-packet-retention"
    ]
    messages = " ".join(f.message for f in findings)
    # Both retention shapes: attribute store and container append, for
    # acquire_filler locals and direct acquire() results alike.
    assert "stored on an attribute" in messages
    assert ".append()" in messages
    assert len(findings) >= 3
