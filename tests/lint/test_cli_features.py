"""CLI tests for the engine upgrades: SARIF, baseline, cache, git scoping, jobs."""

import json
import subprocess
from pathlib import Path

import pytest

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "repro"

BAD_PRINT = "def report(value):\n    print(value)\n"
CLEAN = "def report(value):\n    return value\n"


def write_module(root: Path, rel: str, text: str) -> Path:
    target = root / "repro" / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    return target


# -- SARIF ---------------------------------------------------------------------


def test_sarif_format_on_findings(capsys):
    bad = str(FIXTURES / "core" / "bad_print.py")
    assert main(["--format", "sarif", "--no-baseline", bad]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert run["results"], "findings must appear as results"
    for result in run["results"]:
        assert result["ruleId"] == "print-call"
        assert "reproLint/v1" in result["partialFingerprints"]
        assert result["locations"][0]["physicalLocation"]["region"]["startLine"] >= 1


def test_sarif_format_clean_has_empty_results(capsys):
    good = str(FIXTURES / "core" / "good_print.py")
    assert main(["--format", "sarif", "--no-baseline", good]) == 0
    document = json.loads(capsys.readouterr().out)
    run = document["runs"][0]
    assert run["results"] == []
    assert len(run["tool"]["driver"]["rules"]) >= 10


# -- baseline ------------------------------------------------------------------


def test_write_baseline_then_pass(tmp_path, capsys):
    bad = write_module(tmp_path, "core/noisy.py", BAD_PRINT)
    baseline = tmp_path / "baseline.json"

    assert main(["--no-baseline", str(bad)]) == 1
    capsys.readouterr()

    assert main(["--write-baseline", "--baseline", str(baseline), str(bad)]) == 0
    assert baseline.is_file()

    assert main(["--baseline", str(baseline), str(bad)]) == 0
    captured = capsys.readouterr()
    assert "baselined finding(s) suppressed" in captured.err

    # The baseline must not hide the finding when explicitly disabled.
    assert main(["--no-baseline", str(bad)]) == 1


def test_baseline_reports_stale_entries(tmp_path, capsys):
    bad = write_module(tmp_path, "core/noisy.py", BAD_PRINT)
    baseline = tmp_path / "baseline.json"
    assert main(["--write-baseline", "--baseline", str(baseline), str(bad)]) == 0
    capsys.readouterr()

    bad.write_text(CLEAN, encoding="utf-8")  # violation fixed: entry goes stale
    assert main(["--baseline", str(baseline), str(bad)]) == 0
    captured = capsys.readouterr()
    assert "stale baseline entry" in captured.err


def test_baseline_autodiscovery_walks_up(tmp_path, capsys):
    bad = write_module(tmp_path, "core/noisy.py", BAD_PRINT)
    baseline = tmp_path / ".repro-lint-baseline.json"
    assert main(["--write-baseline", "--baseline", str(baseline), str(bad)]) == 0
    capsys.readouterr()

    # No --baseline flag: discovered by walking up from the lint path.
    assert main([str(tmp_path / "repro")]) == 0
    assert "baselined finding(s) suppressed" in capsys.readouterr().err


def test_missing_explicit_baseline_is_usage_error(tmp_path):
    bad = write_module(tmp_path, "core/noisy.py", BAD_PRINT)
    with pytest.raises(SystemExit) as excinfo:
        main(["--baseline", str(tmp_path / "nope.json"), str(bad)])
    assert excinfo.value.code == 2


# -- cache ---------------------------------------------------------------------


def test_cache_cold_then_warm(tmp_path, capsys):
    bad = write_module(tmp_path, "core/noisy.py", BAD_PRINT)
    cache = tmp_path / "cache.json"

    assert main(["--no-baseline", "--cache", str(cache), str(bad)]) == 1
    first = capsys.readouterr()
    assert "0 hit(s), 1 miss(es)" in first.err

    assert main(["--no-baseline", "--cache", str(cache), str(bad)]) == 1
    second = capsys.readouterr()
    assert "1 hit(s), 0 miss(es)" in second.err
    assert first.out == second.out, "cached findings must render identically"

    bad.write_text(BAD_PRINT + "\n# touched\n", encoding="utf-8")
    assert main(["--no-baseline", "--cache", str(cache), str(bad)]) == 1
    assert "1 miss(es)" in capsys.readouterr().err


# -- --changed-only ------------------------------------------------------------


def git(cwd: Path, *argv: str) -> None:
    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@example.com", *argv],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


def test_changed_only_scopes_to_git_diff(tmp_path, monkeypatch, capsys):
    git(tmp_path, "init", "-q")
    unchanged = write_module(tmp_path, "core/committed.py", BAD_PRINT)
    changed = write_module(tmp_path, "core/edited.py", CLEAN)
    git(tmp_path, "add", ".")
    git(tmp_path, "commit", "-q", "-m", "seed")

    changed.write_text(BAD_PRINT, encoding="utf-8")
    monkeypatch.chdir(tmp_path)

    assert main(["--no-baseline", "--changed-only", str(tmp_path / "repro")]) == 1
    out = capsys.readouterr().out
    assert "edited.py" in out
    assert "committed.py" not in out, "unchanged files must not be analyzed"
    assert unchanged.exists()


def test_changed_only_with_clean_diff_base(tmp_path, monkeypatch, capsys):
    git(tmp_path, "init", "-q")
    write_module(tmp_path, "core/committed.py", BAD_PRINT)
    git(tmp_path, "add", ".")
    git(tmp_path, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)

    # Nothing changed vs HEAD: zero files analyzed, exit clean.
    assert (
        main(
            [
                "--no-baseline",
                "--changed-only",
                "--diff-base",
                "HEAD",
                str(tmp_path / "repro"),
            ]
        )
        == 0
    )
    assert "repro-lint: clean" in capsys.readouterr().out


def test_changed_only_outside_git_is_usage_error(tmp_path, monkeypatch):
    bad = write_module(tmp_path, "core/noisy.py", BAD_PRINT)
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "no-such-dir"))
    with pytest.raises(SystemExit) as excinfo:
        main(["--changed-only", str(bad)])
    assert excinfo.value.code == 2


# -- --jobs --------------------------------------------------------------------


def test_jobs_parallel_matches_serial(capsys):
    target = str(FIXTURES)
    serial_code = main(["--no-baseline", target])
    serial_out = capsys.readouterr().out
    parallel_code = main(["--no-baseline", "--jobs", "2", target])
    parallel_out = capsys.readouterr().out
    assert parallel_code == serial_code == 1
    assert parallel_out == serial_out


def test_jobs_zero_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["--jobs", "0", str(FIXTURES)])
    assert excinfo.value.code == 2


# -- suppressions and the rule catalogue ---------------------------------------


def test_comma_separated_suppression(tmp_path):
    source = (
        "def f(v):\n"
        "    ok = v == 0.5; print(v)  # repro-lint: disable=float-eq,print-call\n"
        "    return ok\n"
    )
    target = write_module(tmp_path, "core/both.py", source)
    assert main(["--no-baseline", str(target)]) == 0


def test_comma_separated_suppression_is_not_a_wildcard(tmp_path, capsys):
    source = (
        "def f(v):\n"
        "    ok = v == 0.5; print(v)  # repro-lint: disable=float-eq\n"
        "    return ok\n"
    )
    target = write_module(tmp_path, "core/partial.py", source)
    assert main(["--no-baseline", str(target)]) == 1
    assert "print-call" in capsys.readouterr().out


def test_list_rules_includes_flow_families(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in (
        "nondeterminism-taint",
        "packet-typestate",
        "bits-bytes",
        "sim-callback-write",
    ):
        assert name in out
    assert "sim-callback-write (warning" in out
