"""INT telemetry under adversity: every fault preset, zero loss on delivery.

The contract: for any preset in the chaos matrix, every packet the
transport actually *delivers* carries a well-formed INT band with at
least one hop record (the band is protected metadata — trimming,
reordering and corruption recovery must never cost telemetry), and two
runs of the same (scenario, seed) produce byte-identical INT and span
JSONL streams.
"""

import pytest

from repro.faults import PRESETS, run_scenario
from repro.faults.harness import TRANSPORTS
from repro.obs.int_telemetry import (
    INTCollector,
    INTExtension,
    disable_int,
    enable_int,
    set_int_collector,
)
from repro.obs.spans import SpanTracer, set_span_tracer

STEP_BOUND = 400_000

PRESET_NAMES = sorted(PRESETS)


def run_with_int(preset, transport="trimming", seed=7, int_path=None, spans_path=None):
    """One scenario run with INT (and optionally span) telemetry armed."""
    collector = INTCollector(enabled=True, jsonl_path=int_path)
    prev_collector = set_int_collector(collector)
    prev_spans = None
    if spans_path is not None:
        prev_spans = set_span_tracer(SpanTracer(enabled=True, jsonl_path=spans_path))
    enable_int()
    try:
        run = run_scenario(
            PRESETS[preset], transport=transport, seed=seed, max_events=STEP_BOUND
        )
    finally:
        collector.close()
        set_int_collector(prev_collector)
        if prev_spans is not None:
            tracer = set_span_tracer(prev_spans)
            tracer.close()
        disable_int()
    return run, collector


@pytest.fixture(scope="module")
def runs():
    """One shared trimming-transport run per preset (simulations dominate)."""
    return {preset: run_with_int(preset) for preset in PRESET_NAMES}


@pytest.mark.parametrize("preset", PRESET_NAMES)
class TestINTSurvivesPresets:
    def test_every_delivered_packet_carries_records(self, runs, preset):
        run, _ = runs[preset]
        assert run.deliveries, f"{preset}: no flow delivered at all"
        for flow, packets in run.deliveries.items():
            for pkt in packets:
                ext = pkt.int_ext
                assert ext is not None, f"{preset}: flow {flow} lost its INT band"
                assert ext.records, (
                    f"{preset}: flow {flow} seq {pkt.seq} delivered with an "
                    f"empty INT band (telemetry loss)"
                )
                # Well-formed on the wire too, not just in memory.
                assert INTExtension.from_bytes(ext.to_bytes()).records == ext.records

    def test_trimmed_survivors_keep_their_stamps(self, runs, preset):
        run, _ = runs[preset]
        trimmed = [
            pkt
            for packets in run.deliveries.values()
            for pkt in packets
            if pkt.is_trimmed
        ]
        for pkt in trimmed:
            # A trim verdict was stamped by whichever device cut it.
            assert any(r.decision != 0 for r in pkt.int_ext.records) or pkt.int_ext.records

    def test_collector_saw_the_deliveries(self, runs, preset):
        run, collector = runs[preset]
        delivered = sum(len(p) for p in run.deliveries.values())
        assert collector.packets_collected >= delivered
        assert collector.records_collected >= delivered  # >= 1 record each
        summary = collector.summary()
        assert summary["series"] > 0

    def test_hop_names_resolve_to_real_devices(self, runs, preset):
        _, collector = runs[preset]
        for name in collector.hops_seen():
            # Interned device/link names, never the hop<N> fallback of an
            # id that was stamped but lost its registry entry.
            assert not name.startswith("hop"), f"{preset}: unresolvable hop {name}"

    def test_bounded_work(self, runs, preset):
        run, _ = runs[preset]
        assert run.steps < STEP_BOUND


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_all_transports_collect(transport):
    run, collector = run_with_int("flaky-link", transport=transport)
    assert run.deliveries
    assert collector.packets_collected > 0


@pytest.mark.parametrize("preset", ["incast-plus-corruption", "reorder-heavy"])
def test_same_seed_runs_are_byte_identical(preset, tmp_path):
    blobs = []
    for attempt in ("a", "b"):
        int_path = tmp_path / f"{attempt}_int.jsonl"
        spans_path = tmp_path / f"{attempt}_spans.jsonl"
        run_with_int(preset, int_path=str(int_path), spans_path=str(spans_path))
        blobs.append((int_path.read_bytes(), spans_path.read_bytes()))
    assert blobs[0][0] == blobs[1][0], f"{preset}: INT JSONL diverged across runs"
    assert blobs[0][1] == blobs[1][1], f"{preset}: span JSONL diverged across runs"
    assert blobs[0][0], "determinism check vacuous: empty INT stream"
    assert blobs[0][1], "determinism check vacuous: empty span stream"
