"""Tracer: events, spans, JSONL streaming, global accessors."""

import json

from repro.obs.trace import Tracer, get_tracer, set_tracer, trace_to


class TestTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.event("x") is None
        assert tracer.events == []

    def test_event_fields_and_sequence(self):
        tracer = Tracer(enabled=True)
        tracer.event("switch.trim", sim_time=1.5, switch="s0", bytes_saved=100)
        tracer.event("switch.drop", kind="buffer-overflow")
        assert [e.name for e in tracer.events] == ["switch.trim", "switch.drop"]
        assert tracer.events[0].seq < tracer.events[1].seq
        assert tracer.events[0].sim_time == 1.5
        assert tracer.events[0].fields["bytes_saved"] == 100

    def test_span_measures_duration(self):
        tracer = Tracer(enabled=True)
        with tracer.span("encode", codec="rht") as fields:
            fields["coords"] = 42
        (ev,) = tracer.events
        assert ev.name == "encode"
        assert ev.duration_s >= 0.0
        assert ev.fields == {"codec": "rht", "coords": 42}

    def test_span_disabled_still_yields(self):
        tracer = Tracer(enabled=False)
        with tracer.span("encode") as fields:
            fields["x"] = 1
        assert tracer.events == []

    def test_max_events_cap(self):
        tracer = Tracer(enabled=True, max_events=2)
        for i in range(5):
            tracer.event("e", i=i)
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 3

    def test_jsonl_streaming_and_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True, jsonl_path=path)
        tracer.event("a", sim_time=0.25, n=1)
        with tracer.span("b"):
            pass
        tracer.close()
        lines = [json.loads(l) for l in open(path)]
        assert [l["name"] for l in lines] == ["a", "b"]
        assert lines[0]["sim_time"] == 0.25
        assert lines[0]["fields"] == {"n": 1}
        assert "duration_s" in lines[1]

    def test_to_jsonl_dump(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.event("a")
        path = str(tmp_path / "dump.jsonl")
        assert tracer.to_jsonl(path) == 1
        assert json.loads(open(path).read())["name"] == "a"


class TestGlobals:
    def test_default_tracer_disabled(self):
        assert get_tracer().enabled is False or isinstance(get_tracer(), Tracer)

    def test_trace_to_installs_and_restores(self, tmp_path):
        previous = get_tracer()
        tracer = trace_to(str(tmp_path / "t.jsonl"))
        try:
            assert get_tracer() is tracer
            assert tracer.enabled
        finally:
            tracer.close()
            set_tracer(previous)
        assert get_tracer() is previous


class TestJsonlRotation:
    def events(self, tracer, n):
        for i in range(n):
            tracer.event("e", i=i)

    def test_rotate_by_event_count(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(
            enabled=True, jsonl_path=str(path), jsonl_max_events=3, jsonl_backups=2
        )
        self.events(tracer, 10)
        tracer.close()
        # Events 1-3 rotated off the end of the chain; 4-6 and 7-9 are
        # the backups; event 10 is in the active file.
        assert tracer.jsonl_rotations == 3
        assert tracer.jsonl_dropped_events == 3
        active = path.read_text().splitlines()
        newest = (tmp_path / "t.jsonl.1").read_text().splitlines()
        oldest = (tmp_path / "t.jsonl.2").read_text().splitlines()
        assert len(active) == 1
        assert len(newest) == 3
        assert len(oldest) == 3
        assert json.loads(active[0])["fields"] == {"i": 9}
        assert json.loads(oldest[0])["fields"] == {"i": 3}
        assert not (tmp_path / "t.jsonl.3").exists()

    def test_rotate_by_bytes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(enabled=True, jsonl_path=str(path), jsonl_max_bytes=1)
        self.events(tracer, 3)  # every event overflows the 1-byte cap
        tracer.close()
        assert tracer.jsonl_rotations == 3
        # Chain depth 1: each rotation past the first discards one event.
        assert tracer.jsonl_dropped_events == 2
        # The last event rotated the file away; a new active file only
        # appears on the next event.
        assert not path.exists()
        assert len((tmp_path / "t.jsonl.1").read_text().splitlines()) == 1

    def test_no_rotation_below_thresholds(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(
            enabled=True, jsonl_path=str(path), jsonl_max_events=100
        )
        self.events(tracer, 5)
        tracer.close()
        assert tracer.jsonl_rotations == 0
        assert tracer.jsonl_dropped_events == 0
        assert len(path.read_text().splitlines()) == 5
        assert not (tmp_path / "t.jsonl.1").exists()

    def test_invalid_rotation_config_rejected(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        for kwargs in (
            {"jsonl_max_bytes": 0},
            {"jsonl_max_events": -1},
            {"jsonl_backups": 0},
        ):
            try:
                Tracer(enabled=True, jsonl_path=path, **kwargs)
            except ValueError:
                continue
            raise AssertionError(f"{kwargs} accepted")

    def test_trace_to_forwards_rotation_config(self, tmp_path):
        previous = get_tracer()
        tracer = trace_to(
            str(tmp_path / "t.jsonl"), jsonl_max_events=2, jsonl_backups=3
        )
        try:
            assert tracer.jsonl_max_events == 2
            assert tracer.jsonl_backups == 3
        finally:
            tracer.close()
            set_tracer(previous)
