"""Acceptance: a congested run's report agrees with SwitchStats.

Runs the paper's core scenario — a gradient message overloading a
shallow trim-enabled dumbbell — under a fresh registry and tracer, and
checks that the trace-derived report and the registry twins agree with
the plain ``SwitchStats`` counters the rest of the repo relies on.
"""

import numpy as np
import pytest

from repro.core import RHTCodec, packetize
from repro.net import QueueMonitor, dumbbell
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_report,
    prometheus_text,
    set_registry,
    set_tracer,
)
from repro.packet import SingleLevelTrim
from repro.transport import FixedWindow, TrimmingReceiver, TrimmingSender


@pytest.fixture
def fresh_obs():
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer(enabled=True)
    prev_registry = set_registry(registry)
    prev_tracer = set_tracer(tracer)
    try:
        yield registry, tracer
    finally:
        set_registry(prev_registry)
        set_tracer(prev_tracer)


def run_congested(tmp_path):
    """Overload a shallow trim-enabled buffer; return (net, messages, monitor)."""
    net = dumbbell(
        pairs=1,
        edge_rate_bps=10e9,
        bottleneck_rate_bps=1e9,
        trim_policy=SingleLevelTrim(),
        buffer_bytes=20_000,
    )
    monitor = QueueMonitor(net.sim, period_s=5e-5)
    monitor.watch("bottleneck", net.link_between("s0", "s1"))
    x = np.random.default_rng(5).standard_normal(100_000)
    codec = RHTCodec(root_seed=9, row_size=4096)
    sender = TrimmingSender(net.hosts["tx0"], flow_id=7, cc=FixedWindow(256))
    messages = []
    TrimmingReceiver(net.hosts["rx0"], flow_id=7, on_message=messages.append)
    sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=7))
    net.sim.run(until=5.0)
    assert sender.done
    return net, messages, monitor


class TestPipelineAgreement:
    def test_report_matches_switch_stats(self, fresh_obs, tmp_path):
        registry, tracer = fresh_obs
        net, messages, monitor = run_congested(tmp_path)

        forwarded = sum(s.stats.forwarded for s in net.switches.values())
        trimmed = sum(s.stats.trimmed for s in net.switches.values())
        dropped = sum(s.stats.dropped for s in net.switches.values())
        saved = sum(s.stats.trimmed_bytes_saved for s in net.switches.values())
        assert trimmed > 0

        # Trace events were emitted at exactly the SwitchStats increment
        # points, so the event counts must match the counters.
        events = [e.to_json() for e in tracer.events]
        names = [e["name"] for e in events]
        assert names.count("switch.forward") == forwarded
        assert names.count("switch.trim") == trimmed
        assert names.count("switch.drop") == dropped
        assert (
            sum(
                e["fields"]["bytes_saved"]
                for e in events
                if e["name"] == "switch.trim"
            )
            == saved
        )

        # ... and therefore so must the report's headline numbers.
        report = build_report(events, registry=registry, title="congested dumbbell")
        total = forwarded + trimmed + dropped
        assert f"trim fraction {trimmed / total:.4f}" in report
        expected_fraction = net.switches["s0"].stats.trim_fraction
        assert trimmed / total == pytest.approx(
            sum(s.stats.trimmed for s in net.switches.values())
            / sum(s.stats.enqueues for s in net.switches.values())
        )
        assert 0.0 < expected_fraction < 1.0
        assert "messages delivered: 1" in report
        assert "-- queue depth (bytes) --" in report
        assert "bottleneck" in report
        assert len(messages) == 1

        # Registry twins agree too.
        assert registry.get("repro_switch_forwarded_total").total() == forwarded
        assert registry.get("repro_switch_trimmed_total").total() == trimmed
        assert registry.get("repro_switch_trim_bytes_saved_total").total() == saved
        assert registry.get("repro_transport_messages_total").total() == 1

        # The Prometheus dump carries the same counters.
        text = prometheus_text(registry)
        assert f'repro_switch_trimmed_total{{switch="s0"}} {trimmed}' in text

    def test_jsonl_roundtrip_preserves_report(self, fresh_obs, tmp_path):
        from repro.obs import read_jsonl

        registry, tracer = fresh_obs
        run_congested(tmp_path)
        path = str(tmp_path / "trace.jsonl")
        n = tracer.to_jsonl(path)
        assert n == len(tracer.events)
        live = build_report([e.to_json() for e in tracer.events])
        replayed = build_report(read_jsonl(path))
        assert live == replayed
