"""Live channel counters: surrender and drop events stream to the registry."""

import numpy as np
import pytest

from repro.collectives.channel import GradientChannel
from repro.core import codec_by_name
from repro.obs.metrics import get_registry
from repro.train import BaselineDropChannel, TrimChannel


@pytest.fixture(autouse=True)
def clean_registry():
    registry = get_registry()
    registry.reset()
    yield registry
    registry.reset()


class SurrenderingChannel(GradientChannel):
    def transfer(self, flat, *, epoch=0, message_id=0, worker=0):
        flat = np.asarray(flat, dtype=np.float64)
        self.count_surrender()
        return np.zeros_like(flat)


class TestLiveCounters:
    def test_surrender_streams_immediately(self, clean_registry):
        channel = SurrenderingChannel()
        channel.transfer(np.ones(10))
        channel.transfer(np.ones(10))
        metric = clean_registry.get("repro_channel_rounds_surrendered_total")
        assert metric is not None
        assert metric.value(channel="SurrenderingChannel") == 2.0
        assert channel.stats.rounds_surrendered == 2

    def test_trim_channel_drops_stream_to_registry(self, clean_registry):
        channel = TrimChannel(
            codec_by_name("rht", root_seed=1, row_size=1024),
            trim_rate=0.0,
            drop_rate=0.9,
            seed=3,
        )
        channel.transfer(np.random.default_rng(0).standard_normal(20_000))
        metric = clean_registry.get("repro_channel_packets_dropped_total")
        assert metric is not None
        assert metric.value(channel="TrimChannel") == float(
            channel.stats.packets_dropped
        )
        assert channel.stats.packets_dropped > 0

    def test_baseline_drop_channel_counts(self, clean_registry):
        channel = BaselineDropChannel(drop_rate=0.5, seed=1)
        channel.transfer(np.random.default_rng(0).standard_normal(20_000))
        metric = clean_registry.get("repro_channel_packets_dropped_total")
        assert metric.value(channel="BaselineDropChannel") == float(
            channel.stats.packets_dropped
        )

    def test_counters_survive_stats_reset(self, clean_registry):
        """reset_stats() zeroes the per-run stats object but the registry
        counter keeps its monotonic total."""
        channel = SurrenderingChannel()
        channel.transfer(np.ones(4))
        channel.reset_stats()
        channel.transfer(np.ones(4))
        metric = clean_registry.get("repro_channel_rounds_surrendered_total")
        assert metric.value(channel="SurrenderingChannel") == 2.0
        assert channel.stats.rounds_surrendered == 1
