"""INT band: wire format, packet/packetizer integration, collector."""

import json

import numpy as np
import pytest

from repro.core import SignMagnitudeCodec, packetize
from repro.obs.int_telemetry import (
    DECISION_DROP,
    DECISION_FORWARD,
    DECISION_TRIM,
    DEFAULT_INT_CAPACITY,
    INT_HEADER_BYTES,
    INT_RECORD_BYTES,
    INT_VERSION,
    INTCollector,
    INTExtension,
    INTHopRecord,
    REASON_BUFFER_OVERFLOW,
    REASON_NONE,
    decision_name,
    disable_int,
    enable_int,
    hop_id,
    hop_name,
    int_capacity,
    reason_name,
)
from repro.packet import FLAG_INT, GRADIENT_HEADER_BYTES, GradientHeader


@pytest.fixture
def int_enabled():
    enable_int()
    yield
    disable_int()


def gradient(n=3000, seed=0):
    return np.random.default_rng(seed).standard_normal(n).astype(np.float64)


def grad_packets(n=3000, **kwargs):
    enc = SignMagnitudeCodec().encode(gradient(n))
    return packetize(enc, "h0", "h1", **kwargs)


def record(hop=1, decision=DECISION_FORWARD, t=0.5, depth=1234, fill=250):
    return INTHopRecord(
        hop=hop,
        decision=decision,
        reason=REASON_NONE,
        sim_time=t,
        queue_depth_bytes=depth,
        fill_permille=fill,
    )


class TestWireFormat:
    def test_record_roundtrip(self):
        rec = record(hop=7, decision=DECISION_TRIM, t=1.25, depth=9999, fill=998)
        data = rec.to_bytes()
        assert len(data) == INT_RECORD_BYTES
        assert INTHopRecord.from_bytes(data) == rec

    def test_extension_roundtrip_with_padding(self):
        ext = INTExtension(capacity=4)
        ext.stamp(1, DECISION_FORWARD, REASON_NONE, 0.1, queue_depth_bytes=10)
        ext.stamp(2, DECISION_TRIM, REASON_BUFFER_OVERFLOW, 0.2, fill_permille=990)
        data = ext.to_bytes()
        # Header plus every slot, used or not.
        assert len(data) == INT_HEADER_BYTES + 4 * INT_RECORD_BYTES
        parsed = INTExtension.from_bytes(data)
        assert parsed == ext
        assert parsed.records[1].reason == REASON_BUFFER_OVERFLOW

    def test_wire_bytes_fixed_regardless_of_count(self):
        ext = INTExtension(capacity=8)
        before = ext.wire_bytes
        for i in range(5):
            ext.stamp(i, DECISION_FORWARD, REASON_NONE, float(i))
        assert ext.wire_bytes == before
        assert len(ext.to_bytes()) == before

    def test_overflow_sets_flag_not_growth(self):
        ext = INTExtension(capacity=2)
        assert ext.stamp(1, DECISION_FORWARD, REASON_NONE, 0.1)
        assert ext.stamp(2, DECISION_FORWARD, REASON_NONE, 0.2)
        assert not ext.stamp(3, DECISION_FORWARD, REASON_NONE, 0.3)
        assert ext.overflowed
        assert len(ext.records) == 2
        assert INTExtension.from_bytes(ext.to_bytes()).overflowed

    def test_fill_permille_clamped_to_field_width(self):
        ext = INTExtension(capacity=1)
        ext.stamp(1, DECISION_FORWARD, REASON_NONE, 0.0, fill_permille=10**6)
        assert ext.records[0].fill_permille == 0xFFFF
        INTExtension.from_bytes(ext.to_bytes())  # still serializable

    def test_from_bytes_rejects_bad_input(self):
        ext = INTExtension(capacity=2)
        good = bytearray(ext.to_bytes())
        with pytest.raises(ValueError, match="version"):
            bad = bytearray(good)
            bad[0] = INT_VERSION + 1
            INTExtension.from_bytes(bytes(bad))
        with pytest.raises(ValueError, match="count"):
            bad = bytearray(good)
            bad[2] = 3  # count > capacity
            INTExtension.from_bytes(bytes(bad))
        with pytest.raises(ValueError, match="bytes"):
            INTExtension.from_bytes(good[:3])

    def test_capacity_bounds(self):
        with pytest.raises(ValueError):
            INTExtension(capacity=0)
        with pytest.raises(ValueError):
            INTExtension(capacity=256)

    def test_fresh_band_same_geometry_no_records(self):
        ext = INTExtension(capacity=3)
        ext.stamp(1, DECISION_DROP, REASON_NONE, 0.1)
        fresh = ext.fresh()
        assert fresh.capacity == 3
        assert fresh.records == []
        assert not fresh.overflowed

    def test_names(self):
        assert decision_name(DECISION_TRIM) == "trim"
        assert decision_name(99) == "decision-99"
        assert reason_name(REASON_BUFFER_OVERFLOW) == "buffer-overflow"
        assert reason_name(99) == "reason-99"


class TestHopRegistry:
    def test_interning_is_stable(self):
        a = hop_id("test-hop-a")
        b = hop_id("test-hop-b")
        assert a != b
        assert hop_id("test-hop-a") == a
        assert hop_name(a) == "test-hop-a"

    def test_unknown_id_renders_fallback(self):
        assert hop_name(65_000) == "hop65000"


class TestPacketizerIntegration:
    def test_disabled_attaches_nothing(self):
        assert int_capacity() is None
        for pkt in grad_packets():
            assert pkt.int_ext is None
            assert not pkt.grad_header.has_int

    def test_enabled_attaches_band_to_every_packet(self, int_enabled):
        packets = grad_packets()
        for pkt in packets:
            assert pkt.int_ext is not None
            assert pkt.int_ext.capacity == DEFAULT_INT_CAPACITY
            assert pkt.int_ext.records == []
            assert pkt.grad_header.has_int

    def test_flag_lives_in_payload_bytes(self, int_enabled):
        # The flag must be baked into the serialized header (payload
        # views are read-only), not just the parsed twin.
        for pkt in grad_packets():
            parsed = GradientHeader.from_bytes(bytes(pkt.payload[:GRADIENT_HEADER_BYTES]))
            assert parsed.flags & FLAG_INT

    def test_wire_size_charges_the_band(self, int_enabled):
        with_band = grad_packets()
        disable_int()
        without = grad_packets()
        expected = INT_HEADER_BYTES + DEFAULT_INT_CAPACITY * INT_RECORD_BYTES
        for a, b in zip(with_band, without):
            assert a.wire_size == b.wire_size + expected

    def test_band_outside_checksum(self, int_enabled):
        pkt = grad_packets()[1].seal()
        assert pkt.verify()
        # A switch stamping after the sender sealed must not read as
        # corruption: the band sits outside the payload CRC.
        pkt.int_ext.stamp(1, DECISION_FORWARD, REASON_NONE, 0.5)
        assert pkt.verify()

    def test_trim_preserves_the_band(self, int_enabled):
        pkt = grad_packets()[1]
        pkt.int_ext.stamp(3, DECISION_FORWARD, REASON_NONE, 0.25, queue_depth_bytes=77)
        trimmed = pkt.trim()
        assert trimmed.int_ext is pkt.int_ext  # shared, untouched
        assert trimmed.int_ext.records[0].queue_depth_bytes == 77
        # Stamps after the trim land on the surviving band.
        trimmed.int_ext.stamp(4, DECISION_TRIM, REASON_BUFFER_OVERFLOW, 0.5)
        assert len(trimmed.int_ext.records) == 2

    def test_clone_gets_fresh_band(self, int_enabled):
        pkt = grad_packets()[1]
        pkt.int_ext.stamp(3, DECISION_FORWARD, REASON_NONE, 0.25)
        clone = pkt.clone()
        assert clone.int_ext is not pkt.int_ext
        assert clone.int_ext.records == []
        assert clone.int_ext.capacity == pkt.int_ext.capacity


class TestCollector:
    def _delivered_packet(self, hops=2):
        pkt = grad_packets(n=400)[1]
        pkt.flow_id = 42
        for h in range(hops):
            pkt.int_ext.stamp(
                hop_id(f"col-hop-{h}"),
                DECISION_FORWARD,
                REASON_NONE,
                0.1 * (h + 1),
                queue_depth_bytes=100 * (h + 1),
                fill_permille=10 * (h + 1),
            )
        return pkt

    def test_disabled_collects_nothing(self, int_enabled):
        collector = INTCollector(enabled=False)
        assert collector.collect(self._delivered_packet()) == 0
        assert collector.series == {}

    def test_series_keyed_by_flow_message_hop(self, int_enabled):
        collector = INTCollector(enabled=True)
        pkt = self._delivered_packet(hops=2)
        assert collector.collect(pkt) == 2
        message_id = pkt.grad_header.message_id
        assert len(collector.series) == 2
        for key in collector.series:
            assert key[0] == 42
            assert key[1] == message_id
        depths = collector.depth_series(42, message_id, "col-hop-0")
        assert depths == [(pytest.approx(0.1), 100)]
        assert collector.summary()["records"] == 2
        assert collector.decision_counts() == {"forward": 2}

    def test_packet_without_band_is_free(self, int_enabled):
        disable_int()
        collector = INTCollector(enabled=True)
        assert collector.collect(grad_packets(n=400)[1]) == 0
        assert collector.packets_collected == 0

    def test_jsonl_is_deterministic(self, int_enabled, tmp_path):
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            collector = INTCollector(enabled=True, jsonl_path=str(path))
            collector.collect(self._delivered_packet(hops=3))
            collector.close()
            paths.append(path)
        first, second = (p.read_bytes() for p in paths)
        assert first == second
        lines = [json.loads(line) for line in first.decode().splitlines()]
        assert len(lines) == 3
        assert lines[0]["decision"] == "forward"
        assert lines[0]["hop_name"] == "col-hop-0"
