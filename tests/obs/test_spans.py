"""SpanTracer: lifecycle, parenting, determinism, global accessors."""

import json

from repro.obs.spans import SpanTracer, get_span_tracer, set_span_tracer, spans_to


class TestLifecycle:
    def test_disabled_is_noop(self):
        tracer = SpanTracer(enabled=False)
        sid = tracer.begin("x", t=0.0)
        assert sid is None
        tracer.end(sid, t=1.0)  # tolerated
        assert tracer.spans == []

    def test_begin_end_records_interval(self):
        tracer = SpanTracer(enabled=True)
        sid = tracer.begin("transport.message", t=0.5, flow_id=7)
        assert tracer.open_spans()[0].name == "transport.message"
        tracer.end(sid, t=1.5, outcome="delivered")
        (span,) = tracer.spans
        assert span.duration == 1.0
        assert span.attrs == {"flow_id": 7, "outcome": "delivered"}
        assert tracer.open_spans() == []

    def test_end_unknown_id_is_ignored(self):
        tracer = SpanTracer(enabled=True)
        tracer.end(12345, t=1.0)
        tracer.end(None)
        assert tracer.spans == []

    def test_times_optional(self):
        tracer = SpanTracer(enabled=True)
        sid = tracer.begin("collective.aggregate")
        tracer.end(sid)
        (span,) = tracer.spans
        assert span.start is None and span.end is None
        assert span.duration is None
        assert "duration_s" not in span.to_json()

    def test_max_spans_cap(self):
        tracer = SpanTracer(enabled=True, max_spans=2)
        for i in range(5):
            tracer.end(tracer.begin("e", t=float(i)), t=float(i))
        assert len(tracer.spans) == 2
        assert tracer.dropped_spans == 3


class TestParenting:
    def test_context_sets_default_parent(self):
        tracer = SpanTracer(enabled=True)
        root = tracer.begin("train.round", t=0.0)
        with tracer.context(root):
            child = tracer.begin("channel.transfer", t=0.1)
            with tracer.context(child):
                leaf = tracer.begin("transport.message", t=0.2)
                tracer.end(leaf, t=0.3)
            tracer.end(child, t=0.4)
        tracer.end(root, t=0.5)
        by = {s.name: s for s in tracer.spans}
        assert by["train.round"].parent_id is None
        assert by["channel.transfer"].parent_id == by["train.round"].span_id
        assert by["transport.message"].parent_id == by["channel.transfer"].span_id
        assert tracer.children(by["train.round"].span_id) == [by["channel.transfer"]]

    def test_explicit_parent_beats_context(self):
        tracer = SpanTracer(enabled=True)
        outer = tracer.begin("a", t=0.0)
        with tracer.context(outer):
            explicit = tracer.begin("b", t=0.1, parent_id=999)
            forced_root = tracer.begin("c", t=0.1, parent_id=None)
            tracer.end(explicit, t=0.2)
            tracer.end(forced_root, t=0.2)
        tracer.end(outer, t=0.3)
        by = {s.name: s for s in tracer.spans}
        assert by["b"].parent_id == 999
        assert by["c"].parent_id is None

    def test_context_with_none_is_transparent(self):
        tracer = SpanTracer(enabled=True)
        with tracer.context(None):
            sid = tracer.begin("x", t=0.0)
        tracer.end(sid, t=1.0)
        assert tracer.spans[0].parent_id is None


class TestJsonl:
    def test_streams_ended_spans_sorted_keys(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = SpanTracer(enabled=True, jsonl_path=str(path))
        sid = tracer.begin("transport.packet", t=0.25, seq=3)
        tracer.end(sid, t=0.75, acked=True)
        tracer.close()
        (line,) = path.read_text().splitlines()
        doc = json.loads(line)
        assert doc["name"] == "transport.packet"
        assert doc["duration_s"] == 0.5
        assert doc["attrs"] == {"acked": True, "seq": 3}
        assert list(doc) == sorted(doc)  # sorted keys -> byte-stable

    def test_same_sequence_twice_is_byte_identical(self, tmp_path):
        blobs = []
        for name in ("a", "b"):
            path = tmp_path / f"{name}.jsonl"
            tracer = SpanTracer(enabled=True, jsonl_path=str(path))
            root = tracer.begin("train.round", t=0.0, epoch=1)
            with tracer.context(root):
                child = tracer.begin("channel.transfer", t=0.1)
                tracer.end(child, t=0.9, outcome="delivered")
            tracer.end(root, t=1.0)
            tracer.close()
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]


class TestGlobals:
    def test_default_tracer_disabled(self):
        assert not get_span_tracer().enabled

    def test_install_and_restore(self, tmp_path):
        tracer = spans_to(str(tmp_path / "s.jsonl"))
        try:
            assert get_span_tracer() is tracer
            assert tracer.enabled
        finally:
            previous = set_span_tracer(SpanTracer(enabled=False))
            assert previous is tracer
