"""Exporters: Prometheus text, JSONL IO, report rendering, report CLI."""

import json

from repro.obs.export import build_report, prometheus_text, read_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import main as report_main


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("pkts_total", "packets seen", ("switch",)).inc(3, switch="s0")
        registry.gauge("depth_bytes").set(120.5)
        text = prometheus_text(registry)
        assert "# HELP pkts_total packets seen" in text
        assert "# TYPE pkts_total counter" in text
        assert 'pkts_total{switch="s0"} 3' in text
        assert "# TYPE depth_bytes gauge" in text
        assert "depth_bytes 120.5" in text

    def test_histogram_exposition(self):
        registry = MetricsRegistry(enabled=True)
        h = registry.histogram("lat", "latency", start=1e-3, factor=10, num_buckets=3)
        h.observe(5e-3)
        h.observe(500.0)  # overflow
        text = prometheus_text(registry)
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text
        assert "lat_sum 500.005" in text
        # Buckets are cumulative.
        assert 'lat_bucket{le="0.01"} 1' in text

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry(enabled=True)) == ""


def _events():
    return [
        {"name": "switch.forward", "seq": 1, "wall_time": 0.0, "sim_time": 0.0},
        {"name": "switch.forward", "seq": 2, "wall_time": 0.0, "sim_time": 1e-6},
        {
            "name": "switch.trim",
            "seq": 3,
            "wall_time": 0.0,
            "sim_time": 2e-6,
            "fields": {"bytes_saved": 1400},
        },
        {
            "name": "switch.drop",
            "seq": 4,
            "wall_time": 0.0,
            "sim_time": 3e-6,
            "fields": {"kind": "buffer-overflow"},
        },
        {
            "name": "queue.sample",
            "seq": 5,
            "wall_time": 0.0,
            "sim_time": 4e-6,
            "fields": {"queue": "bottleneck", "bytes_queued": 30000},
        },
        {
            "name": "transport.deliver",
            "seq": 6,
            "wall_time": 0.0,
            "sim_time": 5e-6,
            "fields": {"fct_s": 5e-6, "retransmissions": 2},
        },
        {
            "name": "decode",
            "seq": 7,
            "wall_time": 0.0,
            "duration_s": 0.01,
            "fields": {"nmse": 0.05},
        },
    ]


class TestBuildReport:
    def test_sections_present(self):
        report = build_report(_events(), title="unit")
        assert "== unit ==" in report
        assert "-- switch --" in report
        assert "trim fraction 0.2500" in report  # 1 of 4 enqueues
        assert "drop fraction 0.2500" in report
        assert "1.40 kB" in report
        assert "buffer-overflow: 1" in report
        assert "-- queue depth (bytes) --" in report
        assert "bottleneck" in report
        assert "-- transport --" in report
        assert "messages delivered: 1" in report
        assert "retransmissions: 2" in report
        assert "-- gradient quality --" in report
        assert "0.05" in report
        assert "-- per-stage wall time --" in report
        assert "decode" in report

    def test_empty_events(self):
        report = build_report([])
        assert "0 trace events" in report

    def test_fabric_section_absent_on_healthy_runs(self):
        assert "-- fabric self-healing --" not in build_report(_events())

    def test_fabric_self_healing_section(self):
        events = _events() + [
            {
                "name": "switch.reroute",
                "seq": 8,
                "wall_time": 0.0,
                "sim_time": 6e-6,
                "fields": {"switch": "agg0", "flow_id": 7, "old_hop": "core1",
                           "new_hop": "core0"},
            },
            {
                "name": "switch.drop",
                "seq": 9,
                "wall_time": 0.0,
                "sim_time": 7e-6,
                "fields": {"kind": "blackhole"},
            },
            {
                "name": "switch.drop",
                "seq": 10,
                "wall_time": 0.0,
                "sim_time": 8e-6,
                "fields": {"kind": "switch-down"},
            },
        ]
        report = build_report(events, title="faulty")
        assert "-- fabric self-healing --" in report
        assert "flow reroutes: 1 (agg0: 1)" in report
        assert "failure drops: blackhole: 1, switch-down: 1" in report
        # Queue-full drops stay out of the failure line.
        assert "buffer-overflow" not in report.split("-- fabric")[1].split("--")[0]

    def test_metrics_snapshot_section(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c", labels=("l",)).inc(9, l="x")
        report = build_report([], registry=registry)
        assert "-- metrics snapshot --" in report
        assert "l=x" in report


class TestJsonlAndCli:
    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "a"}\n\n{"name": "b"}\n')
        assert [e["name"] for e in read_jsonl(str(path))] == ["a", "b"]

    def test_cli_renders_report(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            for ev in _events():
                fh.write(json.dumps(ev) + "\n")
        assert report_main([str(path), "--title", "cli run"]) == 0
        out = capsys.readouterr().out
        assert "== cli run ==" in out
        assert "trim fraction" in out

    def test_cli_missing_file(self, tmp_path):
        assert report_main([str(tmp_path / "nope.jsonl")]) == 1
