"""repro-timeline: binning, rendering, HTML export, CLI round trip."""

import json

import pytest

from repro.obs.export import timeline_html
from repro.obs.timeline import Timeline, build_timeline, main, render_timeline


def ev(name, t, **fields):
    doc = {"name": name, "seq": 1, "wall_time": 0.0}
    if t is not None:
        doc["sim_time"] = t
    if fields:
        doc["fields"] = fields
    return doc


def synthetic_events():
    return [
        ev("queue.sample", 0.0, queue="s0->s1", bytes_queued=100),
        ev("queue.sample", 0.5, queue="s0->s1", bytes_queued=900),
        ev("queue.sample", 1.0, queue="s0->s1", bytes_queued=400),
        ev("switch.forward", 0.1, flow_id=500),
        ev("switch.forward", 0.6, flow_id=500),
        ev("switch.trim", 0.6, flow_id=500),
        ev("switch.drop", 0.7, kind="buffer-overflow"),
        ev("transport.retransmit", 0.8, flow_id=500, seq=3, attempt=1),
        ev("transport.surrender", 0.9, flow_id=501, reason="retries"),
    ]


class TestBuildTimeline:
    def test_bins_span_the_event_range(self):
        tl = build_timeline(synthetic_events(), bins=10)
        assert tl.t0 == 0.0
        assert tl.t1 == 1.0
        assert tl.bin_s == pytest.approx(0.1)
        assert tl.events_seen == 9

    def test_queue_bins_take_peak(self):
        tl = build_timeline(synthetic_events(), bins=2)
        series = tl.queues["s0->s1"]
        # t=0.5 and the clamped t=1.0 share bin 1; the peak (900) wins.
        assert series == [100.0, 900.0]

    def test_activity_rows(self):
        tl = build_timeline(synthetic_events(), bins=1)
        assert tl.activity["forward"] == [2]
        assert tl.activity["trim"] == [1]
        assert tl.activity["drop"] == [1]
        assert tl.activity["retransmit"] == [1]

    def test_marks_and_flow_rows(self):
        tl = build_timeline(synthetic_events(), bins=4)
        assert tl.marks == [(0.9, "transport.surrender", "flow_id=501, reason=retries")]
        (row,) = tl.layers
        assert row["flow"] == 500
        assert row["trims"] == 1
        assert row["trim_fraction"] == pytest.approx(1 / 3)

    def test_transfer_events_win_over_flow_rows(self):
        events = synthetic_events() + [
            ev("channel.transfer", 1.0, message_id=12, worker=0,
               fct_s=0.4, trim_fraction=0.25, nmse=0.01),
        ]
        tl = build_timeline(events, bins=4)
        (row,) = tl.layers
        assert row["layer"] == 12
        assert row["trim_fraction"] == 0.25

    def test_blackhole_drops_get_their_own_row(self):
        events = synthetic_events() + [
            ev("switch.drop", 0.2, kind="blackhole", flow_id=500),
            ev("switch.drop", 0.2, kind="blackhole", flow_id=500),
        ]
        tl = build_timeline(events, bins=1)
        assert tl.activity["blackhole"] == [2]
        # Queue-full style drops stay in the plain row.
        assert tl.activity["drop"] == [1]

    def test_reroutes_surface_as_marks(self):
        events = synthetic_events() + [
            ev(
                "switch.reroute",
                0.3,
                switch="agg0",
                flow_id=500,
                old_hop="core1",
                new_hop="core0",
            ),
        ]
        tl = build_timeline(events, bins=4)
        assert (
            0.3,
            "switch.reroute",
            "flow_id=500, switch=agg0, old_hop=core1, new_hop=core0",
        ) in tl.marks

    def test_needs_timed_events(self):
        with pytest.raises(ValueError, match="sim_time"):
            build_timeline([ev("channel.degraded_step", None)], bins=4)
        with pytest.raises(ValueError, match="bins"):
            build_timeline(synthetic_events(), bins=0)


class TestRender:
    def test_terminal_rendering(self):
        lines = render_timeline(build_timeline(synthetic_events(), bins=10))
        text = "\n".join(lines)
        assert "s0->s1" in text
        assert "█" in text  # the peak bin
        assert "total 2" in text  # forwards
        assert "transport.surrender" in text
        assert "trim_fraction" in text

    def test_html_is_self_contained(self):
        html = timeline_html(
            build_timeline(synthetic_events(), bins=10), title="t<est"
        )
        assert html.startswith("<!doctype html>")
        assert "t&lt;est" in html  # titles are escaped
        assert "s0-&gt;s1" in html
        assert "<script" not in html
        assert "http" not in html  # no external assets


class TestCli:
    def test_record_then_render(self, tmp_path, caplog):
        out = tmp_path / "artifacts"
        rc = main(
            [
                "record",
                "flaky-link",
                "--seed",
                "3",
                "--out-dir",
                str(out),
                "--html",
                "--profile",
            ]
        )
        assert rc == 0
        for name in (
            "trace.jsonl",
            "spans.jsonl",
            "int.jsonl",
            "int_summary.json",
            "timeline.txt",
            "timeline.html",
            "profile.json",
        ):
            assert (out / name).exists(), f"missing artifact {name}"
        summary = json.loads((out / "int_summary.json").read_text())
        assert summary["packets"] > 0
        assert summary["records"] >= summary["packets"]
        profile = json.loads((out / "profile.json").read_text())
        assert profile and all("wall_s" in row for row in profile)
        assert "== congestion timeline ==" in (out / "timeline.txt").read_text()

        html_out = tmp_path / "replay.html"
        rc = main(
            [
                "render",
                str(out / "trace.jsonl"),
                "--bins",
                "20",
                "--html",
                str(html_out),
            ]
        )
        assert rc == 0
        assert html_out.read_text().startswith("<!doctype html>")

    def test_record_restores_global_telemetry(self, tmp_path):
        from repro.obs.int_telemetry import get_int_collector, int_capacity
        from repro.obs.spans import get_span_tracer
        from repro.obs.trace import get_tracer

        main(["record", "flaky-link", "--out-dir", str(tmp_path / "o")])
        assert int_capacity() is None
        assert not get_int_collector().enabled
        assert not get_span_tracer().enabled
        assert not get_tracer().enabled
