"""Metrics registry: counters, gauges, log-scale histograms, no-op mode."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("pkts_total", "packets")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labels_separate_series(self, registry):
        c = registry.counter("pkts_total", "packets", ("switch",))
        c.inc(switch="s0")
        c.inc(3, switch="s1")
        assert c.value(switch="s0") == 1
        assert c.value(switch="s1") == 3
        assert c.total() == 4

    def test_bind_is_equivalent(self, registry):
        c = registry.counter("pkts_total", "packets", ("switch",))
        bound = c.bind(switch="s0")
        bound.inc()
        bound.inc(2)
        assert c.value(switch="s0") == 3
        assert bound.value == 3

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("pkts_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("pkts_total", labels=("switch",))
        with pytest.raises(ValueError):
            c.inc(port="x")
        with pytest.raises(ValueError):
            c.inc()  # missing label


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth", "bytes", ("queue",))
        g.set(100, queue="q")
        g.inc(50, queue="q")
        g.dec(25, queue="q")
        assert g.value(queue="q") == 125


class TestHistogram:
    def test_count_sum_mean(self, registry):
        h = registry.histogram("lat_seconds")
        for v in (1e-6, 1e-3, 1e-3, 0.1):
            h.observe(v)
        assert h.count() == 4
        assert h.total() == pytest.approx(0.102001)
        assert h.mean() == pytest.approx(0.102001 / 4)

    def test_log_scale_percentile_order_of_magnitude(self, registry):
        h = registry.histogram("lat_seconds", start=1e-9, factor=10, num_buckets=22)
        for _ in range(99):
            h.observe(1e-4)
        h.observe(10.0)
        p50 = h.percentile(50)
        # Geometric interpolation is accurate to the bucket factor.
        assert 1e-5 < p50 < 1e-3
        assert 1.0 < h.percentile(100) < 100.0

    def test_overflow_bucket(self, registry):
        h = registry.histogram("x", start=1.0, factor=2.0, num_buckets=3)
        h.observe(1e9)  # beyond the last bound
        assert h.count() == 1
        assert h.percentile(99) > h.bounds[-1]

    def test_empty_percentile_is_zero(self, registry):
        h = registry.histogram("x")
        assert h.percentile(99) == 0.0


class TestRegistry:
    def test_idempotent_registration(self, registry):
        a = registry.counter("c", "help", ("l",))
        b = registry.counter("c", "other help", ("l",))
        assert a is b

    def test_kind_conflict_rejected(self, registry):
        registry.counter("c")
        with pytest.raises(ValueError):
            registry.gauge("c")

    def test_label_conflict_rejected(self, registry):
        registry.counter("c", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("c", labels=("b",))

    def test_disabled_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("c")
        g = registry.gauge("g")
        h = registry.histogram("h")
        c.inc()
        g.set(5)
        h.observe(1.0)
        assert c.value() == 0
        assert g.value() == 0
        assert h.count() == 0

    def test_disabled_bound_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        bound = registry.counter("c", labels=("l",)).bind(l="x")
        bound.inc()
        assert bound.value == 0

    def test_reset_zeroes_but_keeps_families(self, registry):
        c = registry.counter("c")
        c.inc(7)
        registry.reset()
        assert registry.get("c") is c
        assert c.value() == 0

    def test_snapshot(self, registry):
        registry.counter("c", labels=("l",)).inc(2, l="x")
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["c"]["l=x"] == 2
        assert snap["h"][""]["count"] == 1

    def test_set_registry_swaps_default(self):
        fresh = MetricsRegistry(enabled=True)
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
