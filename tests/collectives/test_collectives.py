"""Tests for channels, collectives, and comm hooks."""

import numpy as np
import pytest

from repro.collectives import (
    AllReduceHook,
    PerfectChannel,
    RingAllReduceHook,
    all_gather,
    allreduce_mean,
    broadcast,
    reduce_scatter,
    ring_allreduce,
)
from repro.core import RHTCodec, codec_by_name
from repro.train import TrimChannel


def worker_grads(world=4, n=1000, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n) for _ in range(world)]


class TestPerfectChannel:
    def test_identity(self):
        channel = PerfectChannel()
        x = np.arange(5.0)
        assert np.array_equal(channel.transfer(x), x)

    def test_returns_copy(self):
        channel = PerfectChannel()
        x = np.arange(5.0)
        out = channel.transfer(x)
        out[0] = 99
        assert x[0] == 0

    def test_stats_accounting(self):
        channel = PerfectChannel()
        channel.transfer(np.zeros(100))
        channel.transfer(np.zeros(50))
        assert channel.stats.messages == 2
        assert channel.stats.coordinates == 150
        assert channel.stats.bytes_sent == 600

    def test_reset_stats(self):
        channel = PerfectChannel()
        channel.transfer(np.zeros(10))
        channel.reset_stats()
        assert channel.stats.messages == 0


class TestAllReduceMean:
    def test_exact_mean_with_perfect_channel(self):
        grads = worker_grads()
        result = allreduce_mean(grads)
        assert np.allclose(result, np.mean(grads, axis=0))

    def test_trim_channel_approximates_mean(self):
        grads = worker_grads(world=4, n=20_000)
        channel = TrimChannel(RHTCodec(root_seed=1, row_size=2048), trim_rate=0.3, seed=2)
        result = allreduce_mean(grads, channel, epoch=1, message_id=1)
        true = np.mean(grads, axis=0)
        err = np.linalg.norm(result - true) / np.linalg.norm(true)
        assert 0 < err < 0.5

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="length"):
            allreduce_mean([np.zeros(3), np.zeros(4)])
        with pytest.raises(ValueError, match="flat"):
            allreduce_mean([np.zeros((2, 2))])
        with pytest.raises(ValueError, match="at least one"):
            allreduce_mean([])


class TestRingAllReduce:
    def test_matches_mean_with_perfect_channel(self):
        grads = worker_grads(world=5, n=1003)  # deliberately not divisible
        results = ring_allreduce(grads)
        true = np.mean(grads, axis=0)
        for rank_result in results:
            assert np.allclose(rank_result, true)

    def test_single_worker_identity(self):
        grads = worker_grads(world=1)
        assert np.allclose(ring_allreduce(grads)[0], grads[0])

    def test_two_workers(self):
        grads = worker_grads(world=2, n=64)
        results = ring_allreduce(grads)
        assert np.allclose(results[0], np.mean(grads, axis=0))
        assert np.allclose(results[1], np.mean(grads, axis=0))

    def test_channel_crossed_per_hop(self):
        channel = PerfectChannel()
        grads = worker_grads(world=4, n=400)
        ring_allreduce(grads, channel)
        # 2 * (N-1) steps, N sends per step = 24 messages.
        assert channel.stats.messages == 24

    def test_compression_error_compounds_but_bounded(self):
        grads = worker_grads(world=4, n=2**14)
        channel = TrimChannel(RHTCodec(root_seed=0, row_size=1024), trim_rate=0.2, seed=1)
        results = ring_allreduce(grads, channel, epoch=1)
        true = np.mean(grads, axis=0)
        err = np.linalg.norm(results[0] - true) / np.linalg.norm(true)
        assert err < 1.5


class TestAllGatherReduceScatterBroadcast:
    def test_all_gather_concatenates(self):
        shards = [np.full(3, float(r)) for r in range(3)]
        gathered = all_gather(shards)
        expected = np.concatenate(shards)
        for rank, view in enumerate(gathered):
            assert np.allclose(view, expected), rank

    def test_all_gather_own_shard_exact_under_compression(self):
        shards = [np.random.default_rng(r).standard_normal(4096) for r in range(3)]
        channel = TrimChannel(
            codec_by_name("sq", root_seed=0), trim_rate=1.0, seed=3
        )
        gathered = all_gather(shards, channel)
        # Rank 1's own chunk is exact even though remote chunks degraded.
        assert np.allclose(gathered[1][4096:8192], shards[1])
        assert not np.allclose(gathered[1][:4096], shards[0])

    def test_reduce_scatter_means_chunks(self):
        tensors = worker_grads(world=4, n=1000)
        outputs = reduce_scatter(tensors)
        true = np.mean(tensors, axis=0)
        assert np.allclose(np.concatenate(outputs), true)

    def test_broadcast(self):
        x = np.arange(10.0)
        copies = broadcast(x, world=3)
        assert len(copies) == 3
        for copy in copies:
            assert np.allclose(copy, x)


class TestHooks:
    def test_allreduce_hook_matches_function(self):
        grads = worker_grads(world=3)
        hook = AllReduceHook()
        assert np.allclose(hook.aggregate(grads, epoch=0), np.mean(grads, axis=0))

    def test_ring_hook_matches_function(self):
        grads = worker_grads(world=3)
        hook = RingAllReduceHook()
        assert np.allclose(hook.aggregate(grads, epoch=0), np.mean(grads, axis=0))

    def test_message_ids_advance(self):
        hook = AllReduceHook()
        a, b = hook.next_message_id(), hook.next_message_id()
        assert b == a + 1

    def test_hook_stats_proxy_channel(self):
        channel = TrimChannel(codec_by_name("sign"), trim_rate=0.5, seed=0)
        hook = AllReduceHook(channel)
        hook.aggregate(worker_grads(world=2, n=20_000), epoch=1)
        assert hook.stats.packets_total > 0
        assert 0.2 < hook.stats.trim_fraction < 0.8


class TestBucketing:
    def test_bucket_bounds_cover_exactly(self):
        from repro.collectives import bucket_bounds

        spans = bucket_bounds(1000, 300)
        assert spans == [(0, 300), (300, 600), (600, 900), (900, 1000)]
        assert bucket_bounds(1000, None) == [(0, 1000)]
        assert bucket_bounds(100, 500) == [(0, 100)]

    def test_bucket_bounds_validation(self):
        from repro.collectives import bucket_bounds

        with pytest.raises(ValueError):
            bucket_bounds(100, 0)

    def test_bucketed_perfect_aggregation_exact(self):
        grads = worker_grads(world=3, n=1111)
        hook = AllReduceHook(bucket_coords=200)
        assert np.allclose(hook.aggregate(grads, epoch=0), np.mean(grads, axis=0))

    def test_bucketed_messages_counted_per_bucket(self):
        from repro.train import TrimChannel

        channel = TrimChannel(codec_by_name("sd", root_seed=0), trim_rate=0.0, seed=0)
        hook = AllReduceHook(channel, bucket_coords=500)
        hook.aggregate(worker_grads(world=2, n=2000), epoch=1)
        # 4 buckets x 2 workers = 8 messages.
        assert channel.stats.messages == 8

    def test_bucketing_localizes_sigma(self):
        """A bucket holding only small coordinates gets a small sigma, so
        sign-decode damage stays inside the bucket (DDP-bucket effect)."""
        rng = np.random.default_rng(0)
        small = rng.standard_normal(4000) * 0.01
        big = rng.standard_normal(4000) * 10.0
        grad = np.concatenate([small, big])
        codec = codec_by_name("sign")
        from repro.train import TrimChannel

        whole = AllReduceHook(TrimChannel(codec, trim_rate=1.0, seed=1))
        bucketed = AllReduceHook(
            TrimChannel(codec_by_name("sign"), trim_rate=1.0, seed=1),
            bucket_coords=4000,
        )
        out_whole = whole.aggregate([grad], epoch=1)
        out_bucketed = bucketed.aggregate([grad], epoch=1)
        err_whole = np.linalg.norm(out_whole[:4000] - small)
        err_bucketed = np.linalg.norm(out_bucketed[:4000] - small)
        assert err_bucketed < err_whole * 0.1
