#!/usr/bin/env python3
"""Observability demo: trace a congested run, then render its report.

One gradient message overloads a shallow trim-enabled dumbbell while
the full observability stack is on:

* a fresh :class:`~repro.obs.MetricsRegistry` collects labelled
  counters/gauges/histograms from the switch, links, transport and
  queue monitor;
* a :class:`~repro.obs.Tracer` streams every gradient-path event
  (packetize -> switch enqueue/trim/drop -> delivery -> decode) to a
  JSONL file;
* :func:`~repro.obs.build_report` turns the trace into the per-run
  summary, and the same file replays later via ``repro-report``.

Run:  python examples/observability_demo.py
"""

import os
import tempfile

import numpy as np

from repro import RHTCodec, SingleLevelTrim, decode_packets, nmse, packetize
from repro.net import QueueMonitor, dumbbell
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_report,
    prometheus_text,
    read_jsonl,
    set_registry,
    set_tracer,
)
from repro.transport import FixedWindow, TrimmingReceiver, TrimmingSender

GRADIENT_COORDS = 100_000
BUFFER_BYTES = 20_000


def main() -> None:
    trace_path = os.path.join(tempfile.mkdtemp(prefix="repro-obs-"), "trace.jsonl")

    # Install a fresh registry BEFORE building the network: devices bind
    # their metric series at construction time.
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer(enabled=True, jsonl_path=trace_path)
    prev_registry = set_registry(registry)
    prev_tracer = set_tracer(tracer)
    try:
        net = dumbbell(
            pairs=1,
            edge_rate_bps=10e9,
            bottleneck_rate_bps=1e9,
            trim_policy=SingleLevelTrim(),
            buffer_bytes=BUFFER_BYTES,
        )
        monitor = QueueMonitor(net.sim, period_s=5e-5)
        monitor.watch("s0->s1", net.link_between("s0", "s1"))

        x = np.random.default_rng(5).standard_normal(GRADIENT_COORDS)
        codec = RHTCodec(root_seed=9, row_size=4096)
        sender = TrimmingSender(net.hosts["tx0"], flow_id=7, cc=FixedWindow(256))
        messages = []
        TrimmingReceiver(net.hosts["rx0"], flow_id=7, on_message=messages.append)
        sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=7))
        net.sim.run(until=5.0)

        decoded = decode_packets(messages[0], codec)
        tracer.event("decode.final", nmse=float(nmse(x, decoded)))
        tracer.close()

        print(build_report(read_jsonl(trace_path), registry=registry,
                           title="congested dumbbell, trimming on"))

        stats = net.switches["s0"].stats
        print()
        print("cross-check against SwitchStats on s0:")
        print(f"  forwarded={stats.forwarded} trimmed={stats.trimmed} "
              f"dropped={stats.dropped}")
        print(f"  trim_fraction={stats.trim_fraction:.4f} "
              f"drop_fraction={stats.drop_fraction:.4f} "
              f"bytes_saved={stats.trimmed_bytes_saved}")

        print()
        print("first Prometheus lines (prometheus_text(registry)):")
        for line in prometheus_text(registry).splitlines()[:6]:
            print(f"  {line}")

        print()
        print(f"trace written to {trace_path}")
        print(f"replay the report any time:  repro-report {trace_path}")
    finally:
        set_registry(prev_registry)
        set_tracer(prev_tracer)


if __name__ == "__main__":
    main()
