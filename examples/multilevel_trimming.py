#!/usr/bin/env python3
"""Multi-level trimming (Section 5.1): one packet, three usable depths.

The tiered 1/8/32-bit encoding lets a switch choose *how hard* to trim
according to congestion: keep ~25% of the packet (8-bit quality) under
mild pressure, or ~3% (1-bit sign + DRIVE scale) under heavy pressure.
This example packetizes a gradient with the multi-level codec, trims
different packets to different depths, and decodes the mix.

Run:  python examples/multilevel_trimming.py
"""

import numpy as np

from repro import MultiLevelCodec, nmse
from repro.packet import trim_to_bits


def main() -> None:
    rng = np.random.default_rng(0)
    gradient = rng.standard_normal(2**15)
    codec = MultiLevelCodec(root_seed=5, row_size=4096)
    encoded = codec.encode(gradient, epoch=1, message_id=1)
    packets = codec.packetize(encoded, src="gpu0", dst="gpu1")
    data = packets[1:]
    full_size = data[0].wire_size
    print(f"gradient: {gradient.size:,} coords -> {len(data)} data packets "
          f"of {full_size} B each\n")

    print("per-depth packet sizes (Section 5.1's '25% or 3%'):")
    for bits in (32, 8, 1):
        pkt = data[0] if bits == 32 else trim_to_bits(data[0], bits)
        print(f"  keep {bits:>2} bits/coord -> {pkt.wire_size:>5} B "
              f"({pkt.wire_size / full_size:.1%} of full)")
    print()

    print(f"{'scenario':>34} | bytes on wire | NMSE")
    print("-" * 66)
    scenarios = {
        "no congestion (untrimmed)": [32] * len(data),
        "mild congestion (all -> 8 bits)": [8] * len(data),
        "heavy congestion (all -> 1 bit)": [1] * len(data),
        "mixed (random 32/8/1 per packet)": list(
            rng.choice([32, 8, 1], size=len(data), p=[0.4, 0.4, 0.2])
        ),
    }
    for label, depths in scenarios.items():
        wire = [packets[0]]
        for pkt, bits in zip(data, depths):
            wire.append(pkt if bits == 32 else trim_to_bits(pkt, int(bits)))
        back, levels = codec.depacketize(wire)
        decoded = codec.decode(back, levels)
        total_bytes = sum(p.wire_size for p in wire)
        print(f"{label:>34} | {total_bytes:>13,} | {nmse(gradient, decoded):.5f}")

    print()
    print("an 8-bit trim already costs almost nothing in accuracy; the")
    print("1-bit depth is the emergency brake for severe congestion.")


if __name__ == "__main__":
    main()
