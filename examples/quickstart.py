#!/usr/bin/env python3
"""Quickstart: encode a gradient into trimmable packets, trim, decode.

Walks the paper's core mechanism end to end:

1. the Section 2 worked example (layout arithmetic);
2. encoding a gradient with each 1-bit codec (sign / SQ / SD / RHT);
3. trimming packets the way a congested switch would;
4. decoding the surviving bytes and measuring reconstruction error.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    available_codecs,
    codec_by_name,
    decode_packets,
    nmse,
    packetize,
    paper_worked_example,
)


def main() -> None:
    print("=" * 70)
    print("Section 2 worked example")
    print("=" * 70)
    layout = paper_worked_example()
    print(f"  {layout.describe()}")
    print(f"  (paper: n=365 coordinates, trim at 87 bytes, 94.2% compression)")

    print()
    print("=" * 70)
    print("Trimmable codecs under a congested switch")
    print("=" * 70)
    rng = np.random.default_rng(7)
    # A gradient-like heavy-tailed vector: mostly small coordinates with
    # a few large ones, the regime where codec choice matters.
    gradient = rng.standard_t(df=3, size=100_000)
    print(f"  gradient: {gradient.size} coordinates, sigma={gradient.std():.3f}")
    print(f"  codecs:   {available_codecs()}")
    print()
    print(f"  {'codec':>6} | {'packets':>7} | {'trimmed':>7} | {'bytes kept':>10} | NMSE")
    print("  " + "-" * 56)

    for name in ["sign", "sq", "sd", "rht"]:
        codec = codec_by_name(name, root_seed=42)
        encoded = codec.encode(gradient, epoch=1, message_id=1)
        packets = packetize(encoded, src="gpu0", dst="gpu1")

        # A congested switch trims 60% of the data packets (the metadata
        # packet travels reliably and is never trimmed).
        trim_rng = np.random.default_rng(3)
        wire = [packets[0]]
        trimmed_count = 0
        for pkt in packets[1:]:
            if trim_rng.random() < 0.6 and pkt.trimmable_bytes() is not None:
                wire.append(pkt.trim())
                trimmed_count += 1
            else:
                wire.append(pkt)

        decoded = decode_packets(wire, codec)
        bytes_kept = sum(p.wire_size for p in wire)
        error = nmse(gradient, decoded)
        print(
            f"  {name:>6} | {len(packets) - 1:>7} | {trimmed_count:>7} "
            f"| {bytes_kept:>10,} | {error:.4f}"
        )

    print()
    print("  RHT's rotation spreads the damage of trimming evenly, which is")
    print("  why it wins at high trim rates despite costing more to encode.")


if __name__ == "__main__":
    main()
