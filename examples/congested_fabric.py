#!/usr/bin/env python3
"""A gradient message crossing a congested shared fabric.

The transport-level story of the paper on the discrete-event simulator:
a gradient flow shares a dumbbell bottleneck with an incast burst of
background traffic.

* With a **drop-tail switch + go-back-N transport** (the NCCL/RoCE
  baseline), the incast overflows the shallow buffer, packets drop, and
  the flow stalls on retransmissions — the straggler problem.
* With a **trimming switch + trimming-aware transport**, overflow
  packets are trimmed to their 1-bit heads and forwarded in the express
  band; the message completes on time with zero retransmissions and the
  receiver still decodes a usable gradient.

Run:  python examples/congested_fabric.py
"""

import numpy as np

from repro import RHTCodec, SingleLevelTrim, decode_packets, nmse, packetize
from repro.net import FlowLog, IncastBurst, dumbbell
from repro.transport import (
    AIMD,
    FixedWindow,
    GoBackNReceiver,
    GoBackNSender,
    TrimmingReceiver,
    TrimmingSender,
)

GRADIENT_COORDS = 200_000
EDGE_GBPS = 10e9
BOTTLENECK_GBPS = 10e9
BUFFER_BYTES = 40_000


def build_network(trim: bool):
    net = dumbbell(
        pairs=4,
        edge_rate_bps=EDGE_GBPS,
        bottleneck_rate_bps=BOTTLENECK_GBPS,
        buffer_bytes=BUFFER_BYTES,
        trim_policy=SingleLevelTrim() if trim else None,
    )
    # Background incast: three senders blast the gradient receiver's
    # side of the bottleneck right as the gradient flow starts.
    burst = IncastBurst(
        net.sim,
        senders=[net.hosts[f"tx{i}"] for i in (1, 2, 3)],
        dst="rx1",
        burst_bytes=400_000,
        seed=1,
    )
    burst.fire(at=0.0)
    return net


def run_baseline(gradient, codec):
    net = build_network(trim=False)
    log = FlowLog()
    sender = GoBackNSender(
        net.hosts["tx0"], flow_id=1, cc=AIMD(initial_window=64), log=log, rto_min=1e-3
    )
    messages = []
    GoBackNReceiver(net.hosts["rx0"], flow_id=1, on_message=messages.append)
    sender.send_message(packetize(codec.encode(gradient), "tx0", "rx0", flow_id=1))
    net.sim.run(until=10.0)
    decoded = decode_packets(messages[0], codec) if messages else None
    return log, net, decoded


def run_trimming(gradient, codec):
    net = build_network(trim=True)
    log = FlowLog()
    sender = TrimmingSender(
        net.hosts["tx0"], flow_id=1, cc=FixedWindow(128), log=log
    )
    messages = []
    TrimmingReceiver(net.hosts["rx0"], flow_id=1, on_message=messages.append)
    sender.send_message(packetize(codec.encode(gradient), "tx0", "rx0", flow_id=1))
    net.sim.run(until=10.0)
    decoded = decode_packets(messages[0], codec) if messages else None
    return log, net, decoded


def main() -> None:
    rng = np.random.default_rng(0)
    gradient = rng.standard_normal(GRADIENT_COORDS)
    codec = RHTCodec(root_seed=9, row_size=2**15)
    print(f"gradient message: {GRADIENT_COORDS:,} fp32 coords "
          f"(~{GRADIENT_COORDS * 4 / 1e6:.1f} MB) across a shared dumbbell")
    print(f"background: 3-way incast into the same bottleneck\n")

    print(f"{'':>22} | {'drop-tail + GBN':>16} | {'trimming switch':>16}")
    print("-" * 62)
    base_log, base_net, base_dec = run_baseline(gradient, codec)
    trim_log, trim_net, trim_dec = run_trimming(gradient, codec)
    rows = [
        ("flow completion time", f"{base_log.max_fct()*1e3:.2f} ms",
         f"{trim_log.max_fct()*1e3:.2f} ms"),
        ("retransmissions", base_log.total_retransmissions(),
         trim_log.total_retransmissions()),
        ("switch drops", base_net.total_switch_stats()["dropped"],
         trim_net.total_switch_stats()["dropped"]),
        ("switch trims", base_net.total_switch_stats()["trimmed"],
         trim_net.total_switch_stats()["trimmed"]),
        ("gradient NMSE", f"{nmse(gradient, base_dec):.4f}" if base_dec is not None else "lost",
         f"{nmse(gradient, trim_dec):.4f}" if trim_dec is not None else "lost"),
    ]
    for label, base, trim in rows:
        print(f"{label:>22} | {str(base):>16} | {str(trim):>16}")

    print()
    print("the baseline pays for every drop with a go-back-N rewind; the")
    print("trimming fabric converts the same congestion into a slightly")
    print("noisier gradient that needs no retransmission at all.")


if __name__ == "__main__":
    main()
