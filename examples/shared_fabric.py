#!/usr/bin/env python3
"""Two training jobs sharing an ECMP leaf-spine fabric (the §1 setting).

The paper's motivating scenarios are shared fabrics: training jobs whose
GPUs are scattered across racks, colliding with each other and with
background bursts.  This example builds a 2-leaf/2-spine Clos with
per-flow ECMP and trimming switches, runs two jobs' gradient exchanges
*plus* an incast burst simultaneously over NDP-style pull transports,
and reports every flow's completion time, trim fraction, and decode
quality.

Run:  python examples/shared_fabric.py
"""

import numpy as np

from repro import RHTCodec, SingleLevelTrim, decode_packets, nmse, packetize
from repro.net import FlowLog, IncastBurst, QueueMonitor, leaf_spine
from repro.transport import PullReceiver, PullSender

COORDS_PER_JOB = 150_000


def main() -> None:
    net = leaf_spine(
        leaves=2,
        spines=2,
        hosts_per_leaf=4,
        host_rate_bps=10e9,
        fabric_rate_bps=10e9,
        trim_policy=SingleLevelTrim(),
        buffer_bytes=30_000,
    )
    net.build_routes(ecmp=True)
    monitor = QueueMonitor(net.sim, period_s=5e-6)
    monitor.watch("leaf0->spine0", net.link_between("leaf0", "spine0"))
    monitor.watch("leaf0->spine1", net.link_between("leaf0", "spine1"))

    # Two jobs exchange gradients across the fabric; background incast
    # slams one of the receivers' leaves at the same instant.
    jobs = {
        "job-A": ("h0_0", "h1_0", 11),
        "job-B": ("h0_1", "h1_1", 22),
    }
    IncastBurst(
        net.sim,
        senders=[net.hosts["h0_2"], net.hosts["h0_3"]],
        dst="h1_2",
        burst_bytes=300_000,
        seed=5,
    ).fire(at=0.0)

    log = FlowLog()
    codec = RHTCodec(root_seed=13, row_size=2**15)
    gradients, deliveries = {}, {}
    for name, (src, dst, flow_id) in jobs.items():
        gradient = np.random.default_rng(flow_id).standard_normal(COORDS_PER_JOB)
        gradients[name] = gradient
        deliveries[name] = []
        sender = PullSender(
            net.hosts[src], flow_id=flow_id, log=log, initial_window=32
        )
        PullReceiver(
            net.hosts[dst], flow_id=flow_id, on_message=deliveries[name].append
        )
        sender.send_message(packetize(codec.encode(gradient), src, dst, flow_id=flow_id))

    net.sim.run(until=10.0)

    print("2-leaf/2-spine Clos, per-flow ECMP, trimming switches, NDP pulls")
    print(f"two {COORDS_PER_JOB:,}-coordinate gradient jobs + 2:1 incast\n")
    print(f"{'flow':>8} | {'FCT ms':>7} | {'retx':>4} | {'trimmed':>7} | NMSE")
    print("-" * 48)
    for name, (src, dst, flow_id) in jobs.items():
        record = log.get(flow_id)
        decoded = decode_packets(deliveries[name][0], codec)
        error = nmse(gradients[name], decoded)
        print(
            f"{name:>8} | {record.fct*1e3:>7.3f} | {record.retransmissions:>4} "
            f"| {record.packets_trimmed:>7} | {error:.4f}"
        )

    stats = net.total_switch_stats()
    print()
    print(f"fabric totals: {stats['forwarded']} forwarded, "
          f"{stats['trimmed']} trimmed, {stats['dropped']} dropped")
    for label in ("leaf0->spine0", "leaf0->spine1"):
        print(f"  {label}: peak queue {monitor.peak_bytes(label):,} B "
              f"(ECMP spreads the two jobs across spines)")
    print()
    print("both jobs finish with zero retransmissions; congestion cost is a")
    print("bounded, decodable gradient error instead of straggler stalls.")


if __name__ == "__main__":
    main()
