#!/usr/bin/env python3
"""Why the codecs behave the way they do: gradient statistics.

Uses :mod:`repro.core.analysis` to show, on a real (small) model's
gradients, the two facts that drive every training result in the paper:

1. training gradients are **heavy-tailed** — the message-wide σ vastly
   overstates the typical coordinate, so the sign codec's ±σ decode is
   mostly noise;
2. the **RHT rotation erases that structure** — after rotation, 1-bit
   quantization error is the same no matter how ugly the input.

Run:  python examples/gradient_analysis.py
"""

import numpy as np

from repro.core import codec_error_profile, heavy_tail_index, per_parameter_scales
from repro.core.analysis import GAUSSIAN_TAIL_INDEX
from repro.nn import Tensor, cross_entropy, make_dataset, make_vgg


def main() -> None:
    train, _ = make_dataset(
        num_classes=50, train_per_class=10, test_per_class=2,
        image_size=12, noise=2.5, seed=0,
    )
    model = make_vgg(
        "vgg-mini", num_classes=50, image_size=12,
        batch_norm=False, classifier_width=64, seed=1,
    )
    model.zero_grad()
    loss = cross_entropy(model(Tensor(train.images[:64])), train.labels[:64])
    loss.backward()
    gradient = model.flat_gradient()

    print("per-layer gradient scales (BN-free VGG — the paper's model family):")
    for record in per_parameter_scales(model):
        bar = "#" * int(min(40, record["rms"] * 200))
        print(f"  param {record['index']:>2} {record['shape']:>18} "
              f"rms={record['rms']:.2e} {bar}")

    index = heavy_tail_index(gradient)
    print(f"\nheavy-tail index sigma/E|v|: {index:.2f} "
          f"(Gaussian would be {GAUSSIAN_TAIL_INDEX:.2f})")
    print("the larger this is, the worse the sign codec's ±sigma decode.\n")

    print("codec NMSE on this real gradient (per-coordinate trim rates):")
    profile = codec_error_profile(gradient, trim_rates=(0.02, 0.1, 0.5, 1.0))
    rates = (0.02, 0.1, 0.5, 1.0)
    print(f"  {'codec':>6} | " + " | ".join(f"{r:>6.0%}" for r in rates))
    print("  " + "-" * 48)
    for name in ("sign", "sq", "sd", "rht", "eden"):
        row = " | ".join(f"{profile[name][r]:6.3f}" for r in rates)
        print(f"  {name:>6} | {row}")

    print("\nrht/eden stay flat because the rotation gaussianizes first —")
    print("exactly the Section 3.2 argument, measured on a live gradient.")


if __name__ == "__main__":
    main()
