#!/usr/bin/env python3
"""Reproducible trimmed training via trim transcripts (Section 5.4).

With trimmable gradients every run is unique — congestion decides what
gets trimmed.  The paper proposes recording the trimmed packet indices
per message and replaying that transcript later.  This example:

1. trains a model through a trim channel while *recording* a transcript;
2. saves the transcript to JSON;
3. re-trains from scratch with the transcript *replayed*;
4. verifies the two runs produce bit-identical final weights.

Run:  python examples/record_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import TrainConfig, TrimChannel, TrimTranscript, codec_by_name
from repro.collectives import AllReduceHook
from repro.nn import MLP, make_dataset
from repro.train import DDPTrainer


def train_once(train_set, test_set, channel):
    model = MLP(192, [64], 10, seed=1)
    config = TrainConfig(epochs=3, batch_size=15, lr=0.05, seed=0, augment=False)
    trainer = DDPTrainer(
        model, train_set, test_set, world_size=2,
        hook=AllReduceHook(channel), config=config,
    )
    history = trainer.train()
    return model, history


def main() -> None:
    train_set, test_set = make_dataset(
        num_classes=10, train_per_class=30, test_per_class=10,
        image_size=8, noise=1.5, seed=0,
    )
    codec = codec_by_name("sd", root_seed=7)

    print("run 1: training with random 30% packet trimming, recording ...")
    transcript = TrimTranscript()
    recorder = TrimChannel(codec, trim_rate=0.3, seed=11, record=transcript)
    model_a, history_a = train_once(train_set, test_set, recorder)
    print(f"  final top-1: {history_a.final_top1:.3f}, "
          f"messages recorded: {len(transcript)}, "
          f"packets trimmed: {transcript.total_trimmed()}")

    path = Path(tempfile.gettempdir()) / "trim_transcript.json"
    transcript.save(path)
    print(f"  transcript saved to {path} ({path.stat().st_size} bytes)")

    print("run 2: training from scratch, replaying the transcript ...")
    replayer = TrimChannel(
        codec, trim_rate=0.0, seed=999, replay=TrimTranscript.load(path)
    )
    model_b, history_b = train_once(train_set, test_set, replayer)
    print(f"  final top-1: {history_b.final_top1:.3f}")

    identical = np.array_equal(model_a.flat_parameters(), model_b.flat_parameters())
    print()
    print(f"final weights bit-identical: {identical}")
    if not identical:
        raise SystemExit("replay failed to reproduce the run")
    print("every trim decision was replayed exactly — the run is reproducible.")


if __name__ == "__main__":
    main()
