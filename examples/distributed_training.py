#!/usr/bin/env python3
"""Distributed training under congestion: baseline vs trimmable codecs.

A miniature of the paper's Figure 3 experiment: train the same model
with the same hyper-parameters, varying only how gradients are
aggregated — a perfect channel (no congestion), and each trimmable codec
with 50% of its packets trimmed.  Prints final accuracy and the modeled
wall-clock time per setup.

Run:  python examples/distributed_training.py
"""

from repro import TrainConfig, TrimChannel, codec_by_name
from repro.collectives import AllReduceHook
from repro.nn import make_dataset, make_vgg
from repro.train import DDPTrainer, RoundTimeModel, TimingConfig

TRIM_RATE = 0.5
EPOCHS = 8


def make_model():
    # BN-free VGG: heterogeneous per-layer gradient scales, like the
    # paper's VGG-19 — the regime where codec choice matters most.
    return make_vgg(
        "vgg-mini", num_classes=50, image_size=12,
        batch_norm=False, classifier_width=64, seed=1,
    )


def main() -> None:
    print("generating the synthetic CIFAR-100 stand-in ...")
    train_set, test_set = make_dataset(
        num_classes=50, train_per_class=40, test_per_class=10,
        image_size=12, noise=2.5, seed=0,
    )
    config = TrainConfig(
        epochs=EPOCHS, batch_size=16, lr=0.05, momentum=0.9,
        step_size=5, gamma=0.2, seed=0, augment=False,
    )
    time_model = RoundTimeModel(
        TimingConfig(),
        codec_ns_per_coord={"sign": 20, "sq": 35, "sd": 42, "rht": 95},
    )

    print(f"training {make_model().num_parameters():,}-parameter VGG, "
          f"2 workers, {EPOCHS} epochs, trim rate {TRIM_RATE:.0%}\n")
    print(f"{'setup':>16} | {'top-1':>6} | {'top-5':>6} | {'model-time':>10} | trimmed")
    print("-" * 62)

    setups = [("baseline (no trim)", None)] + [
        (f"{name} @ {TRIM_RATE:.0%} trim", name) for name in ["sign", "sq", "sd", "rht"]
    ]
    for label, codec_name in setups:
        if codec_name is None:
            hook = AllReduceHook()
        else:
            kwargs = {"row_size": 4096} if codec_name == "rht" else {}
            codec = codec_by_name(codec_name, root_seed=3, **kwargs)
            hook = AllReduceHook(TrimChannel(codec, TRIM_RATE, seed=5))
        trainer = DDPTrainer(
            make_model(), train_set, test_set,
            world_size=2, hook=hook, config=config,
            time_model=time_model, codec_name=codec_name, trim_rate=TRIM_RATE,
        )
        history = trainer.train()
        trim_frac = history.records[-1].trim_fraction
        print(
            f"{label:>16} | {history.final_top1:>6.3f} | {history.final_top5:>6.3f} "
            f"| {history.total_time():>9.1f}s | {trim_frac:.1%}"
        )

    print()
    print("expected shape (paper Fig. 3): at 50% trim the sign codec")
    print("collapses toward chance, SQ/SD degrade, and RHT alone stays")
    print("within reach of the uncongested baseline.")


if __name__ == "__main__":
    main()
