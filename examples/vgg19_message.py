#!/usr/bin/env python3
"""Paper-scale fidelity check: a real VGG-19 gradient message.

Builds the actual VGG-19 architecture the paper trains (~20 M
parameters, no BatchNorm), takes one synthetic gradient of exactly that
size, and pushes it through the full trimmable pipeline at the paper's
parameters: rows of 2^15 for the RHT, MTU-sized packets, 1-bit heads.
Prints the wire-level numbers a deployment would see.

This is the one example that runs at the paper's full scale — expect
about a minute of numpy; everything else in `examples/` is scaled down.

Run:  python examples/vgg19_message.py
"""

import time

import numpy as np

from repro import RHTCodec, nmse, packetize
from repro.core import decode_packets
from repro.nn import make_vgg


def main() -> None:
    print("building VGG-19 (the paper's model) ...")
    model = make_vgg("vgg19", num_classes=100, image_size=32, batch_norm=False, seed=0)
    num_coords = model.num_parameters()
    print(f"  parameters: {num_coords:,} (~{num_coords * 4 / 1e6:.0f} MB of fp32 gradient)")

    # A synthetic gradient with realistic heavy tails.
    rng = np.random.default_rng(0)
    gradient = rng.standard_t(df=3, size=num_coords)

    codec = RHTCodec(root_seed=7, row_size=2**15)  # the paper's row size
    start = time.perf_counter()
    encoded = codec.encode(gradient, epoch=1, message_id=1)
    encode_s = time.perf_counter() - start
    print(f"  RHT encode ({encoded.length:,} padded coords, "
          f"{encoded.length // 2**15} rows of 2^15): {encode_s:.2f}s on CPU")
    print(f"  metadata side-channel: {encoded.metadata.wire_bytes} B "
          f"({encoded.metadata.row_scales.size} row scales) — one reliable packet")

    packets = packetize(encoded, "gpu0", "gpu1")
    data = packets[1:]
    full_bytes = sum(p.wire_size for p in data)
    print(f"  data packets: {len(data):,} x {data[0].wire_size} B "
          f"= {full_bytes / 1e6:.1f} MB on the wire")

    for trim_rate in [0.0, 0.1, 0.5]:
        trim_rng = np.random.default_rng(3)
        wire = [packets[0]]
        for pkt in data:
            if trim_rate and trim_rng.random() < trim_rate:
                wire.append(pkt.trim())
            else:
                wire.append(pkt)
        wire_bytes = sum(p.wire_size for p in wire)
        start = time.perf_counter()
        decoded = decode_packets(wire, codec)
        decode_s = time.perf_counter() - start
        error = nmse(gradient, decoded)
        print(f"  trim {trim_rate:>4.0%}: {wire_bytes / 1e6:6.1f} MB delivered, "
              f"NMSE {error:.4f}, decode {decode_s:.2f}s")

    print()
    print("the 50% row is the paper's headline operating point: roughly half")
    print("the bytes, a bounded gradient error, and zero retransmissions.")


if __name__ == "__main__":
    main()
