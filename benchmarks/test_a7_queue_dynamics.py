"""A7 — queue dynamics under incast: drop-tail vs trimming switch.

The paper's core transport narrative (§1): when an incast fills a
shallow buffer, a trimming switch converts would-be drops into tiny
express-band headers, so the queue never wedges and no retransmission
storm follows.  We drive the same incast against both switch types and
record the bottleneck queue with :class:`repro.net.QueueMonitor`.
"""

import numpy as np

from repro.bench import ascii_chart, emit, format_table
from repro.core import RHTCodec, packetize
from repro.net import FlowLog, IncastBurst, QueueMonitor, dumbbell
from repro.packet import SingleLevelTrim
from repro.transport import FixedWindow, TrimmingReceiver, TrimmingSender

BUFFER = 25_000


def run_one(trim: bool):
    net = dumbbell(
        pairs=4,
        edge_rate_bps=10e9,
        bottleneck_rate_bps=10e9,
        buffer_bytes=BUFFER,
        trim_policy=SingleLevelTrim() if trim else None,
    )
    monitor = QueueMonitor(net.sim, period_s=2e-6)
    monitor.watch("bottleneck", net.link_between("s0", "s1"))
    IncastBurst(
        net.sim,
        senders=[net.hosts[f"tx{i}"] for i in (1, 2, 3)],
        dst="rx1",
        burst_bytes=300_000,
        seed=1,
    ).fire(at=0.0)
    codec = RHTCodec(root_seed=1, row_size=4096)
    x = np.random.default_rng(0).standard_normal(100_000)
    log = FlowLog()
    sender = TrimmingSender(net.hosts["tx0"], flow_id=1, cc=FixedWindow(128), log=log)
    TrimmingReceiver(net.hosts["rx0"], flow_id=1)
    sender.send_message(packetize(codec.encode(x), "tx0", "rx0", flow_id=1))
    net.sim.run(until=30.0)
    stats = net.total_switch_stats()
    return monitor, log, stats, sender


def run_a7():
    results = {}
    for label, trim in [("drop-tail", False), ("trimming", True)]:
        monitor, log, stats, sender = run_one(trim)
        results[label] = dict(
            series=monitor.series("bottleneck"),
            peak=monitor.peak_bytes("bottleneck"),
            congested_frac=monitor.time_above("bottleneck", int(BUFFER * 0.9)),
            fct=log.max_fct(),
            drops=stats["dropped"],
            trims=stats["trimmed"],
            done=sender.done,
        )
    return results


def test_a7_queue_dynamics(benchmark):
    results = benchmark.pedantic(run_a7, rounds=1, iterations=1)
    emit("\n[A7] bottleneck queue depth during a 3:1 incast + gradient flow")
    emit(ascii_chart(
        {label: r["series"][:250] for label, r in results.items()},
        x_label="seconds",
        y_label="queue bytes",
    ))
    rows = [
        [
            label,
            r["peak"],
            f"{r['congested_frac']:.0%}",
            f"{r['fct']*1e3:.2f}" if r["fct"] != float("inf") else "stalled",
            r["drops"],
            r["trims"],
        ]
        for label, r in results.items()
    ]
    emit(format_table(
        ["switch", "peak queue B", "time >90% full", "gradient FCT ms",
         "drops", "trims"],
        rows,
    ))
    drop_tail = results["drop-tail"]
    trimming = results["trimming"]
    # The trimming switch converts drops into trims...
    assert trimming["trims"] > 0
    assert trimming["drops"] < drop_tail["drops"]
    # ...and the gradient flow finishes without stalling.
    assert trimming["done"]
    assert trimming["fct"] <= drop_tail["fct"] * 1.2
