"""F5 — per-round time breakdown (compute / encode / comm).

Paper facts to match in shape (Section 4.4 + Figure 5): trimmable
encoding adds ~42-68 % to a training round, and the RHT codec is
modestly slower than the scalar codecs (~18 % in the paper's CUDA
prototype; here the ratio comes from this machine's measured numpy
throughput).
"""

from repro.bench import emit, fig5_breakdown


def test_fig5_breakdown(benchmark):
    result = benchmark.pedantic(fig5_breakdown, rounds=1, iterations=1)
    emit("\n" + result.render())
    by_name = {row[0]: row for row in result.rows}
    base_total = float(by_name["baseline"][4])
    sq_total = float(by_name["sq"][4])
    rht_total = float(by_name["rht"][4])
    overhead = sq_total / base_total - 1.0
    assert 0.2 < overhead < 0.9  # paper: 42-68 %
    assert sq_total < rht_total < sq_total * 1.8  # RHT slower, modestly
