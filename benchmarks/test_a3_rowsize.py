"""A3 — RHT row-size ablation (Section 3.2's optimization).

The paper splits each collective message into rows of 2^15 entries so
every row fits the GPU's L1 and rotates in parallel, reporting a
noticeable speedup over rotating the whole 25 MB blob.  We sweep the row
size on the numpy substrate: smaller rows cut the O(log n) butterfly
depth and improve cache locality, at (slightly) different trimmed-decode
quality because the DRIVE scale is estimated per row.
"""

import time

import numpy as np

from repro.bench import emit, format_table
from repro.core import RHTCodec, nmse

NUM_COORDS = 2**18


def run_a3():
    x = np.random.default_rng(0).standard_normal(NUM_COORDS)
    rows = []
    for row_size in [2**10, 2**12, 2**15, NUM_COORDS]:
        codec = RHTCodec(root_seed=1, row_size=row_size)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            enc = codec.encode(x)
            codec.decode(enc)
            best = min(best, time.perf_counter() - start)
        mask = np.random.default_rng(2).random(enc.length) < 0.5
        err = nmse(x, codec.decode(enc, trimmed=mask))
        label = "whole blob" if row_size == NUM_COORDS else f"2^{row_size.bit_length()-1}"
        rows.append([label, row_size, f"{best / NUM_COORDS * 1e9:.1f}", f"{err:.4f}"])
    return rows


def test_a3_rowsize(benchmark):
    rows = benchmark.pedantic(run_a3, rounds=1, iterations=1)
    emit("\n" + format_table(
        ["rows", "row size", "encode+decode ns/coord", "NMSE @ 50% trim"],
        rows,
        title="[A3] RHT row-size ablation (paper default: 2^15)",
    ))
    ns = {row[0]: float(row[2]) for row in rows}
    # Row-wise transforms beat whole-blob rotation, the paper's point.
    assert ns["2^10"] < ns["whole blob"]
    # Quality stays in the same band regardless of row size.
    errs = [float(row[3]) for row in rows]
    assert max(errs) - min(errs) < 0.1
