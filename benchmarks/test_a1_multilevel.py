"""A1 — multi-level trimming (Section 5.1, future work implemented).

Two questions from the paper:
1. Does the tiered 1/8/32-bit encoding decode at the advertised quality
   at each depth (trim to ~25 % keeps 8-bit quality, ~3 % keeps 1-bit)?
2. In a closed loop — a congested switch choosing between trim depths —
   is it better to trim more packets shallowly (8-bit) or fewer packets
   deeply (1-bit)?  We run the same overload against three policies and
   report delivered bytes, reconstruction NMSE, and drops.
"""

import numpy as np

from repro.bench import emit, format_table
from repro.core import MultiLevelCodec, nmse
from repro.net import FlowLog, dumbbell
from repro.packet import MultiLevelTrim
from repro.transport import FixedWindow, TrimmingReceiver, TrimmingSender

NUM_COORDS = 2**15
ROW_SIZE = 4096


def _array_level_rows():
    codec = MultiLevelCodec(root_seed=1, row_size=ROW_SIZE)
    x = np.random.default_rng(0).standard_normal(NUM_COORDS)
    enc = codec.encode(x)
    rows = []
    for bits, label in [(32, "untrimmed (32b)"), (8, "trim to ~25% (8b)"), (1, "trim to ~3% (1b)")]:
        levels = np.full(enc.length, bits, dtype=np.int64)
        rows.append([label, f"{nmse(x, codec.decode(enc, levels)):.2e}"])
    return rows


def _closed_loop_rows():
    policies = {
        "shallow only (8b)": MultiLevelTrim([8], [0.0]),
        "deep only (1b)": MultiLevelTrim([1], [0.0]),
        "adaptive (8b->1b)": MultiLevelTrim([8, 1], [0.0, 0.97]),
    }
    rows = []
    for label, policy in policies.items():
        net = dumbbell(
            pairs=1,
            edge_rate_bps=40e9,
            bottleneck_rate_bps=1e9,
            trim_policy=policy,
            buffer_bytes=15_000,
        )
        codec = MultiLevelCodec(root_seed=2, row_size=ROW_SIZE)
        x = np.random.default_rng(1).standard_normal(NUM_COORDS)
        enc = codec.encode(x)
        log = FlowLog()
        sender = TrimmingSender(net.hosts["tx0"], flow_id=1, cc=FixedWindow(512), log=log)
        messages = []
        TrimmingReceiver(net.hosts["rx0"], flow_id=1, on_message=messages.append)
        sender.send_message(codec.packetize(enc, "tx0", "rx0", flow_id=1))
        net.sim.run(until=30.0)
        stats = net.total_switch_stats()
        if messages:
            back, levels = codec.depacketize(messages[0])
            err = nmse(x, codec.decode(back, levels))
            depth_counts = {b: int((levels == b).sum()) for b in (1, 8, 32)}
        else:
            err, depth_counts = float("nan"), {}
        rows.append(
            [
                label,
                f"{log.max_fct()*1e3:.2f}",
                stats["trimmed"],
                stats["dropped"],
                f"{err:.4f}",
                str(depth_counts),
            ]
        )
    return rows


def run_a1():
    return _array_level_rows(), _closed_loop_rows()


def test_a1_multilevel(benchmark):
    array_rows, loop_rows = benchmark.pedantic(run_a1, rounds=1, iterations=1)
    emit("\n" + format_table(
        ["depth", "NMSE"], array_rows, title="[A1a] tiered decode quality"
    ))
    emit("\n" + format_table(
        ["switch policy", "FCT ms", "trimmed", "dropped", "message NMSE", "coords by depth"],
        loop_rows,
        title="[A1b] closed-loop trim-depth policies under overload",
    ))
    quality = {row[0]: float(row[1]) for row in array_rows}
    assert quality["untrimmed (32b)"] < quality["trim to ~25% (8b)"] < quality["trim to ~3% (1b)"]
    assert quality["trim to ~25% (8b)"] < 1e-3
    # Closed loop — the Section 5.1 tradeoff in action: shallow 8-bit
    # trims give far better reconstruction but, being ~4x larger, can
    # still overflow the express band under extreme overload (drops!).
    # The deep and adaptive policies must complete with zero drops.
    by_policy = {row[0]: row for row in loop_rows}
    assert by_policy["deep only (1b)"][3] == 0
    assert by_policy["adaptive (8b->1b)"][3] == 0
    shallow_err = float(by_policy["shallow only (8b)"][4])
    deep_err = float(by_policy["deep only (1b)"][4])
    adaptive_err = float(by_policy["adaptive (8b->1b)"][4])
    assert shallow_err < deep_err  # shallow keeps more information
    assert adaptive_err <= deep_err + 1e-9  # adaptive never worse than deep
