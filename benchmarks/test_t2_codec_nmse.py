"""T2 — codec reconstruction quality vs trim rate.

The quality mechanism behind Figure 3: per-codec NMSE under trimming on
Gaussian and heavy-tailed inputs.  RHT should dominate at high trim
rates, especially on heavy tails; the sign codec should be the worst
there (its ±σ decode is what makes training fail).
"""

from repro.bench import emit, t2_codec_nmse


def test_t2_codec_nmse(benchmark):
    result = benchmark.pedantic(t2_codec_nmse, rounds=1, iterations=1)
    emit("\n" + result.render())
    # Heavy-tail rows: rht beats every scalar codec at full trim.
    heavy_full = next(r for r in result.rows if r[0] == "heavy-tail" and r[1] == "100%")
    sign_err, sq_err, sd_err, rht_err = (float(v) for v in heavy_full[2:])
    assert rht_err < sign_err
    assert rht_err < sq_err
    assert rht_err < sd_err
