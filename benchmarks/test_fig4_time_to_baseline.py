"""F4 — time-to-baseline-accuracy vs trim rate.

For every codec and trim rate: the modeled wall-clock time to reach the
no-congestion baseline's accuracy band.  Expected shapes (paper
Figure 4): at low trim rates all codecs are slower than the baseline
(encoding overhead with nothing to gain); at medium rates the cheap
scalar codecs beat RHT; at 50 % trim RHT is the only codec that still
reaches the band at all.
"""

from repro.bench import bench_scale, emit, fig4_time_to_baseline, trim_rates


def test_fig4_time_to_baseline(benchmark):
    result = benchmark.pedantic(fig4_time_to_baseline, rounds=1, iterations=1)
    emit("\n" + result.render())

    rows = {(r[0], r[1]): r for r in result.rows}
    top_rate = f"{trim_rates()[-1]:.1%}"

    def reaches(rate, codec):
        return "n/a" not in rows[(rate, codec)][2]

    # At the highest trim rate RHT reaches the band; sign does not.
    assert reaches(top_rate, "rht")
    assert not reaches(top_rate, "sign")
    # Sign fails (near-chance accuracy) at 50% — the divergence column.
    assert rows[(top_rate, "sign")][5] == "yes"
    assert rows[(top_rate, "rht")][5] == "no"
