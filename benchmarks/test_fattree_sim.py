"""Fat-tree simulator throughput benchmark (the cluster-scale hot path).

The multi-tenant cluster driver (``repro-cluster``) spends essentially
all its time inside the event loop forwarding packets across the ECMP
fat-tree, so this measures exactly that: a k=4 fat-tree with eight
on/off tenants crossing pods, run for a fixed window of simulated time.
The ``*_per_s`` numbers recorded through
:func:`repro.bench.record_result` gate the batched-heap-pop and
link-burst-batching optimisations against the checked-in
``benchmarks/BENCH_results.json`` baseline (``repro-bench --compare``).
"""

import time

from repro.bench import record_result
from repro.net.crosstraffic import CROSS_TRAFFIC_FLOW_BASE, OnOffFlow
from repro.net.topology import fat_tree

#: Simulated window each run drains.  Long enough for ~60k events at
#: the tenant rates below — comparable to one ``repro-cluster`` wave.
SIM_WINDOW_S = 5e-3

#: Flow-id base clear of the tenant/background reserved blocks.
FLOW_BASE = CROSS_TRAFFIC_FLOW_BASE + 900_000

#: (src host, dst host) pairs crossing pods, so every packet takes the
#: full 5-hop edge-agg-core-agg-edge path and exercises ECMP hashing.
PAIRS = [
    ("h0_0_0", "h2_1_1"),
    ("h0_0_1", "h3_0_0"),
    ("h0_1_0", "h2_0_1"),
    ("h1_0_0", "h3_1_1"),
    ("h1_1_1", "h2_0_0"),
    ("h2_1_0", "h0_0_1"),
    ("h3_0_1", "h1_1_0"),
    ("h3_1_0", "h0_1_1"),
]


def _run_once():
    """Build a fresh fabric, drain SIM_WINDOW_S, return (events, packets)."""
    net = fat_tree(k=4, rate_bps=10e9, ecmp=True, ecmp_seed=3, host_burst=8)
    flows = []
    for index, (src, dst) in enumerate(PAIRS):
        flow = OnOffFlow(
            net.sim,
            net.hosts[src],
            dst,
            rate_bps=2.5e9,
            burst_s=200e-6,
            idle_s=50e-6,
            seed=index,
            flow_id=FLOW_BASE + index,
            stop_at=SIM_WINDOW_S,
        )
        flow.start()
        flows.append(flow)
    net.sim.run(until=SIM_WINDOW_S)
    return net.sim.events_processed, sum(f.packets_emitted for f in flows)


def test_fattree_forwarding_throughput():
    """Events/s and packets/s through the ECMP fat-tree event loop."""
    events, packets = _run_once()  # warm-up (also sanity-checked below)
    assert events > 10_000, "fabric barely ran — tenants misconfigured?"
    assert packets > 1_000

    best_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        run_events, run_packets = _run_once()
        elapsed = time.perf_counter() - start
        # The run is deterministic: every repeat drains the same schedule.
        assert (run_events, run_packets) == (events, packets)
        best_s = min(best_s, elapsed)

    record_result(
        "perf fat-tree sim (k=4, ecmp, burst=8, 8 tenants)",
        {
            "sim_events": events,
            "packets_forwarded": packets,
            "sim_events_per_s": events / best_s,
            "packets_per_s": packets / best_s,
        },
    )
