"""F3 — time-to-accuracy curves per trim rate (the headline figure).

One panel per trim rate: top-1 accuracy as a function of modeled
wall-clock time for the baseline and the four codecs.  Expected shapes
(paper Figure 3): at low trim rates every codec tracks the baseline but
pays encoding overhead; at high trim rates the sign codec flat-lines
(the paper's divergence) while RHT is the only codec still reaching
baseline-level accuracy.
"""

from repro.bench import ascii_chart, bench_scale, emit, fig3_tta, format_table


def _render(panels):
    for rate, series in sorted(panels.items()):
        emit(f"\n[F3] top-1 accuracy vs wall-clock, trim rate {rate:.1%}")
        emit(ascii_chart(series, x_label="modeled seconds", y_label="top-1"))
        rows = [
            [label, f"{pts[-1][0]:.1f}", f"{pts[-1][1]:.3f}"]
            for label, pts in series.items()
        ]
        emit(format_table(["codec", "end time (s)", "final top-1"], rows))


def test_fig3_tta(benchmark):
    panels = benchmark.pedantic(fig3_tta, rounds=1, iterations=1)
    _render(panels)

    rates = sorted(panels)
    high = panels[rates[-1]]  # the 50% panel
    final = {label: pts[-1][1] for label, pts in high.items()}
    # RHT is the only codec within reach of the baseline at 50% trim.
    assert final["rht"] > final["baseline"] - 0.10
    assert final["rht"] > final["sq"]
    assert final["rht"] > final["sign"] + 0.2
    # The sign codec collapses toward chance (1/50) at heavy trimming.
    assert final["sign"] < 0.2
    low = panels[rates[0]]
    # At low trim rates every codec stays within a band of the baseline.
    for label, pts in low.items():
        assert pts[-1][1] > final["baseline"] - 0.2, label
