"""Codec encode+decode microbenchmarks (feeds the Figure 5 cost model).

These use the real pytest-benchmark loop (not pedantic) — they are the
measured per-coordinate throughput numbers that the round-time model
scales into the Figure 5 breakdown.
"""

import numpy as np
import pytest

from repro.core import MultiLevelCodec, codec_by_name

NUM_COORDS = 2**16


@pytest.fixture(scope="module")
def gradient():
    return np.random.default_rng(0).standard_normal(NUM_COORDS)


@pytest.mark.parametrize("name", ["sign", "sq", "sd", "rht"])
def test_encode_decode_throughput(benchmark, gradient, name):
    kwargs = {"row_size": 4096} if name == "rht" else {}
    codec = codec_by_name(name, root_seed=1, **kwargs)

    def round_trip():
        enc = codec.encode(gradient, epoch=0, message_id=1)
        return codec.decode(enc)

    result = benchmark(round_trip)
    assert result.shape == (NUM_COORDS,)


def test_multilevel_throughput(benchmark, gradient):
    codec = MultiLevelCodec(root_seed=1, row_size=4096)

    def round_trip():
        enc = codec.encode(gradient)
        return codec.decode(enc)

    result = benchmark(round_trip)
    assert result.shape == (NUM_COORDS,)


def test_trim_operation_throughput(benchmark, gradient):
    """The switch-side cost: trimming a packet is just a byte slice."""
    from repro.core import SignMagnitudeCodec, packetize

    packets = packetize(SignMagnitudeCodec().encode(gradient), "a", "b")
    data = [p for p in packets[1:] if p.trimmable_bytes() is not None]

    def trim_all():
        return [p.trim() for p in data]

    trimmed = benchmark(trim_all)
    assert all(t.is_trimmed for t in trimmed)
