"""Codec encode+decode microbenchmarks (feeds the Figure 5 cost model).

These use the real pytest-benchmark loop (not pedantic) — they are the
measured per-coordinate throughput numbers that the round-time model
scales into the Figure 5 breakdown.

The ``test_pipeline_stage_throughput`` benchmark additionally times each
stage of the gradient hot path (encode → packetize → depacketize →
decode) with a plain ``perf_counter`` loop and records the
coordinates-per-second numbers through :func:`repro.bench.record_result`,
so ``repro-bench compare`` can gate regressions against the checked-in
``benchmarks/BENCH_results.json`` baseline (see docs/performance.md).
"""

import time

import numpy as np
import pytest

from repro.bench import record_result
from repro.core import MultiLevelCodec, codec_by_name, depacketize, packetize

NUM_COORDS = 2**16


@pytest.fixture(scope="module")
def gradient():
    return np.random.default_rng(0).standard_normal(NUM_COORDS)


def _best_seconds(fn, repeats=5, number=3):
    """Best-of-``repeats`` mean seconds per call over ``number`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


def test_pipeline_stage_throughput(gradient):
    """Per-stage hot-path throughput for the paper's P=1/Q=31 layout."""
    codec = codec_by_name("sign", root_seed=1)
    enc = codec.encode(gradient, epoch=0, message_id=1)
    packets = packetize(enc, "a", "b")
    # Stress depacketize the way congestion does: every third data packet
    # trimmed, every seventh dropped, and the rest arriving reversed.
    received = []
    for i, pkt in enumerate(packets):
        if i and i % 7 == 0:
            continue
        received.append(pkt.trim() if i and i % 3 == 0 else pkt)
    received = received[::-1]

    encode_s = _best_seconds(lambda: codec.encode(gradient, epoch=0, message_id=1))
    packetize_s = _best_seconds(lambda: packetize(enc, "a", "b"))
    both_s = _best_seconds(
        lambda: packetize(codec.encode(gradient, epoch=0, message_id=1), "a", "b")
    )
    depacketize_s = _best_seconds(lambda: depacketize(packets))
    depacketize_congested_s = _best_seconds(lambda: depacketize(received))
    message = depacketize(packets)
    decode_s = _best_seconds(
        lambda: codec.decode(message.to_encoded(), trimmed=message.trimmed)
    )

    record_result(
        "perf codec pipeline (P=1/Q=31, sign)",
        {
            "coords": NUM_COORDS,
            "encode_coords_per_s": NUM_COORDS / encode_s,
            "packetize_coords_per_s": NUM_COORDS / packetize_s,
            "encode_packetize_coords_per_s": NUM_COORDS / both_s,
            "depacketize_coords_per_s": NUM_COORDS / depacketize_s,
            "depacketize_congested_coords_per_s": NUM_COORDS / depacketize_congested_s,
            "decode_coords_per_s": NUM_COORDS / decode_s,
        },
    )
    assert depacketize(packets).length == NUM_COORDS


def test_rht_pipeline_throughput(gradient):
    """Encode+packetize throughput for the rotated (RHT) codec."""
    codec = codec_by_name("rht", root_seed=1, row_size=4096)

    def round_trip():
        return packetize(codec.encode(gradient, epoch=0, message_id=1), "a", "b")

    seconds = _best_seconds(round_trip)
    record_result(
        "perf rht encode+packetize (row=4096)",
        {"coords": NUM_COORDS, "encode_packetize_coords_per_s": NUM_COORDS / seconds},
    )
    assert depacketize(round_trip()).length >= NUM_COORDS


@pytest.mark.parametrize("name", ["sign", "sq", "sd", "rht"])
def test_encode_decode_throughput(benchmark, gradient, name):
    kwargs = {"row_size": 4096} if name == "rht" else {}
    codec = codec_by_name(name, root_seed=1, **kwargs)

    def round_trip():
        enc = codec.encode(gradient, epoch=0, message_id=1)
        return codec.decode(enc)

    result = benchmark(round_trip)
    assert result.shape == (NUM_COORDS,)


def test_multilevel_throughput(benchmark, gradient):
    codec = MultiLevelCodec(root_seed=1, row_size=4096)

    def round_trip():
        enc = codec.encode(gradient)
        return codec.decode(enc)

    result = benchmark(round_trip)
    assert result.shape == (NUM_COORDS,)


def test_trim_operation_throughput(benchmark, gradient):
    """The switch-side cost: trimming a packet is just a byte slice."""
    from repro.core import SignMagnitudeCodec, packetize

    packets = packetize(SignMagnitudeCodec().encode(gradient), "a", "b")
    data = [p for p in packets[1:] if p.trimmable_bytes() is not None]

    def trim_all():
        return [p.trim() for p in data]

    trimmed = benchmark(trim_all)
    assert all(t.is_trimmed for t in trimmed)
