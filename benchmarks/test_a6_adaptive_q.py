"""A6 — ahead-of-time Q adaptation + just-in-time trimming (§5.3).

A byte-budgeted bottleneck carries the same gradient repeatedly while
the sender chooses its ahead-of-time depth three ways:

* **static 32-bit** — rely on JIT trimming alone: full packets hog the
  budget, later packets cascade to 1 bit or drop;
* **static 1-bit** — over-compress: never trimmed, but the link idles
  and quality is capped at sign-level;
* **adaptive** — the §5.3 controller: step down only when the link
  reports heavy trimming, step back up when calm, targeting a small
  positive trim fraction ("slightly under-compress and over-send").
"""

import numpy as np

from repro.bench import emit, format_table
from repro.core import MultiLevelCodec, nmse
from repro.train import AdaptiveQController, BudgetedLinkChannel

NUM_COORDS = 2**15
MESSAGES = 6


def run_a6():
    codec = MultiLevelCodec(root_seed=1, row_size=4096)
    x = np.random.default_rng(0).standard_normal(NUM_COORDS)
    full_bytes = sum(p.wire_size for p in codec.packetize(codec.encode(x), "a", "b"))
    rows = []
    for budget_frac in [0.35, 0.6]:
        budget = int(full_bytes * budget_frac)
        setups = {
            "static 32b (JIT only)": dict(static_send_bits=32),
            "static 1b (overcompress)": dict(static_send_bits=1),
            "adaptive (Section 5.3)": dict(controller=AdaptiveQController()),
        }
        for label, kwargs in setups.items():
            channel = BudgetedLinkChannel(codec, capacity_bytes=budget, **kwargs)
            out = None
            for m in range(MESSAGES):
                out = channel.transfer(x, message_id=m)
            utilization = channel.stats.bytes_sent / (budget * MESSAGES)
            rows.append(
                [
                    f"{budget_frac:.0%}",
                    label,
                    channel.last_send_bits,
                    f"{channel.last_trim_fraction:.2f}",
                    channel.packets_dropped_total,
                    f"{utilization:.0%}",
                    f"{nmse(x, out):.5f}",
                ]
            )
    return rows


def test_a6_adaptive_q(benchmark):
    rows = benchmark.pedantic(run_a6, rounds=1, iterations=1)
    emit("\n" + format_table(
        ["link budget", "sender policy", "send bits", "JIT trim frac",
         "dropped", "link util", "final NMSE"],
        rows,
        title="[A6] ahead-of-time Q adaptation vs JIT-only vs overcompression",
    ))
    # At the tight 35% budget: adaptive beats both static extremes.
    tight = {r[1]: r for r in rows if r[0] == "35%"}
    adaptive_err = float(tight["adaptive (Section 5.3)"][6])
    jit_err = float(tight["static 32b (JIT only)"][6])
    over_err = float(tight["static 1b (overcompress)"][6])
    assert adaptive_err < jit_err
    assert adaptive_err < over_err
    # Overcompression never drops but wastes the link.
    assert tight["static 1b (overcompress)"][4] == 0
    assert float(tight["static 1b (overcompress)"][5].rstrip("%")) < 30
