"""F2 — Section 2 worked layout example.

Regenerates the paper's packet-layout arithmetic: an MTU-sized packet
carries n≈365 fp32 coordinates; with P=1 the switch trims at 87 bytes
for a 94.2 % compression ratio.
"""

from repro.bench import emit, f2_layout


def test_fig2_layout(benchmark):
    result = benchmark.pedantic(f2_layout, rounds=1, iterations=1)
    emit("\n" + result.render())
    paper_row = result.rows[0]
    assert paper_row[2] in (364, 365)  # coords per packet
    assert abs(paper_row[3] - 87) <= 1  # trim threshold bytes
    assert paper_row[4] in ("94.2%", "94.1%", "94.3%")
