"""A8 — optimizer sensitivity to trimmed gradients.

The paper trains with momentum-SGD.  How much of each codec's behaviour
is optimizer-specific?  Adam normalizes per coordinate by the running
second moment, so the sign codec's ±σ inflation of tiny coordinates is
absorbed into the denominator instead of the update — Adam should be
markedly more forgiving of the biased codec, while RHT remains the safe
choice under both.
"""

from repro.bench import emit, format_table
from repro.bench.experiments import RHT_ROW_SIZE, training_dataset, _make_model
from repro.collectives import AllReduceHook
from repro.core import codec_by_name
from repro.nn.optim import SGD, Adam
from repro.train import DDPTrainer, TrainConfig, TrimChannel

TRIM_RATE = 0.5
EPOCHS = 8


def run_one(codec_name, optimizer_name):
    train, test = training_dataset()
    model = _make_model()
    if codec_name is None:
        hook = AllReduceHook()
    else:
        kwargs = {"row_size": RHT_ROW_SIZE} if codec_name == "rht" else {}
        codec = codec_by_name(codec_name, root_seed=3, **kwargs)
        hook = AllReduceHook(TrimChannel(codec, TRIM_RATE, seed=5))
    config = TrainConfig(
        epochs=EPOCHS, batch_size=16, lr=0.05, momentum=0.9,
        step_size=5, gamma=0.2, seed=0, augment=False,
    )
    if optimizer_name == "adam":
        factory = lambda params: Adam(params, lr=2e-3)
    else:
        factory = lambda params: SGD(params, lr=0.05, momentum=0.9)
    trainer = DDPTrainer(
        model, train, test, world_size=2, hook=hook, config=config,
        optimizer_factory=factory,
    )
    return trainer.train()


def run_a8():
    rows = []
    for optimizer in ["sgd", "adam"]:
        for codec in [None, "sign", "rht"]:
            history = run_one(codec, optimizer)
            rows.append(
                [
                    optimizer,
                    codec or "baseline",
                    f"{history.final_top1:.3f}",
                    f"{history.final_top5:.3f}",
                    f"{history.records[-1].train_loss:.3f}",
                ]
            )
    return rows


def test_a8_optimizer_sensitivity(benchmark):
    rows = benchmark.pedantic(run_a8, rounds=1, iterations=1)
    emit("\n" + format_table(
        ["optimizer", "codec @ 50% trim", "final top1", "final top5", "train loss"],
        rows,
        title="[A8] optimizer sensitivity to trimmed gradients",
    ))
    by_key = {(r[0], r[1]): float(r[2]) for r in rows}
    # RHT tracks its baseline under both optimizers.
    assert by_key[("sgd", "rht")] > by_key[("sgd", "baseline")] - 0.12
    assert by_key[("adam", "rht")] > by_key[("adam", "baseline")] - 0.12
    # Sign under SGD collapses; the ordering sign < rht holds everywhere.
    assert by_key[("sgd", "sign")] < 0.2
    assert by_key[("sgd", "sign")] < by_key[("sgd", "rht")]
    assert by_key[("adam", "sign")] < by_key[("adam", "rht")] + 0.05
