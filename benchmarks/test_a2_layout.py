"""A2 — packet layout ablation (Section 2's design discussion).

Compares the two ways to arrange coordinates for trimming at equal
bytes-kept budgets:

* **magnitude-ordered** (MLT-style): whole fp32 coordinates, largest
  first; trimming discards the smallest coordinates entirely.
* **head/tail split** (the paper's design): 1-bit heads first, tails
  after; trimming keeps a 1-bit code for *every* coordinate.

The magnitude layout is exact until the trim cuts into coordinates it
needed; the head/tail split degrades gracefully down to ~3 % of the
packet, which is why the paper adopts it.
"""

import numpy as np

from repro.bench import emit, format_table
from repro.core import RHTCodec, magnitude_order, nmse

NUM_COORDS = 2**14
COORDS_PER_PKT = 256


def magnitude_layout_nmse(x: np.ndarray, keep_fraction: float) -> float:
    """NMSE when trimming keeps the first keep_fraction of each packet."""
    order = magnitude_order(x, COORDS_PER_PKT)
    wire = x[order]
    kept = np.zeros_like(wire)
    keep = int(COORDS_PER_PKT * keep_fraction)
    for start in range(0, wire.size, COORDS_PER_PKT):
        kept[start : start + keep] = wire[start : start + keep]
    decoded = np.empty_like(x)
    decoded[order] = kept
    return nmse(x, decoded)


def headtail_layout_nmse(x: np.ndarray, trim_rate: float, codec: RHTCodec) -> float:
    """NMSE when trim_rate of packets are trimmed to their 1-bit heads."""
    enc = codec.encode(x)
    num_packets = -(-enc.length // COORDS_PER_PKT)
    mask_pkts = np.random.default_rng(3).random(num_packets) < trim_rate
    mask = np.repeat(mask_pkts, COORDS_PER_PKT)[: enc.length]
    return nmse(x, codec.decode(enc, trimmed=mask))


def run_a2():
    rng = np.random.default_rng(0)
    inputs = {
        "gaussian": rng.standard_normal(NUM_COORDS),
        "heavy-tail": rng.standard_t(df=3, size=NUM_COORDS),
    }
    codec = RHTCodec(root_seed=1, row_size=4096)
    rows = []
    # Equal-bytes comparison: keeping fraction f of a magnitude packet
    # costs f*32 bits/coord; a trimmed head/tail packet costs 1 bit/coord,
    # i.e. f = 1/32 ~ 3%.  We sweep the byte budget.
    for input_name, x in inputs.items():
        for keep_fraction in [0.8, 0.5, 0.2, 1.0 / 32.0]:
            mag = magnitude_layout_nmse(x, keep_fraction)
            # head/tail: with budget f*32 bits per coord on every packet,
            # a fraction (1 - f*32/32)/(31/32) of packets must be trimmed.
            trim_rate = min(1.0, (1.0 - keep_fraction) * 32.0 / 31.0)
            ht = headtail_layout_nmse(x, trim_rate, codec)
            rows.append(
                [input_name, f"{keep_fraction:.1%}", f"{mag:.4f}",
                 f"{trim_rate:.0%}", f"{ht:.4f}"]
            )
    return rows


def test_a2_layout(benchmark):
    rows = benchmark.pedantic(run_a2, rounds=1, iterations=1)
    emit("\n" + format_table(
        ["input", "bytes kept", "magnitude-order NMSE", "equiv. trim rate",
         "head/tail NMSE"],
        rows,
        title="[A2] layout ablation at equal byte budgets",
    ))
    by_key = {(r[0], r[1]): r for r in rows}
    # At the deep (~3% bytes) budget on *Gaussian* inputs, the head/tail
    # split wins: magnitude ordering keeps only 3% of the coordinates
    # while RHT keeps a 1-bit code for all of them.
    gauss_deep = by_key[("gaussian", "3.1%")]
    assert float(gauss_deep[4]) < float(gauss_deep[2])
    # On heavy tails the few huge coordinates carry most of the energy,
    # so pure magnitude retention is competitive even at 3% — which is
    # why Section 5.3 proposes *combining* sparsification with trimmable
    # encoding rather than picking one.
    heavy_deep = by_key[("heavy-tail", "3.1%")]
    assert float(heavy_deep[2]) < 1.0
    # At a mild 80% budget, magnitude ordering is near-exact (MLT's 20%
    # observation) on both distributions.
    assert float(by_key[("gaussian", "80.0%")][2]) < 0.05
    assert float(by_key[("heavy-tail", "80.0%")][2]) < 0.05
