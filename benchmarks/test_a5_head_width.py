"""A5 — head-width sweep with the EDEN-style multi-bit codec (§5.1).

The paper evaluates P=1 and asks for versatile encodings supporting
other widths.  We sweep P ∈ {1, 2, 4, 8}: trimmed-packet size grows
linearly with P while the trimmed-decode error falls roughly 4x per
extra 2 bits (Lloyd-Max for the post-RHT Gaussian), mapping the
quality/compression frontier a trim-depth policy can choose from.
"""

import numpy as np

from repro.bench import emit, format_table
from repro.core import EdenCodec, coords_per_packet, nmse
from repro.packet import WIRE_HEADER_BYTES, GRADIENT_HEADER_BYTES

NUM_COORDS = 2**15


def run_a5():
    x = np.random.default_rng(0).standard_normal(NUM_COORDS)
    rows = []
    for bits in [1, 2, 4, 8]:
        codec = EdenCodec(root_seed=1, head_bits=bits, row_size=4096)
        enc = codec.encode(x)
        full_err = nmse(x, codec.decode(enc))
        trim_err = nmse(x, codec.decode(enc, trimmed=np.ones(enc.length, bool)))
        n = coords_per_packet(1500, bits, 32 - bits)
        trimmed_bytes = WIRE_HEADER_BYTES + GRADIENT_HEADER_BYTES + (-(-bits * n // 8))
        rows.append(
            [
                f"P={bits}",
                f"{trimmed_bytes}",
                f"{trimmed_bytes / 1500:.1%}",
                f"{full_err:.1e}",
                f"{trim_err:.5f}",
            ]
        )
    return rows


def test_a5_head_width(benchmark):
    rows = benchmark.pedantic(run_a5, rounds=1, iterations=1)
    emit("\n" + format_table(
        ["head width", "trimmed pkt (B)", "of MTU", "untrimmed NMSE", "all-trimmed NMSE"],
        rows,
        title="[A5] EDEN head-width sweep (Section 5.1 versatile encodings)",
    ))
    errors = [float(r[4]) for r in rows]
    assert errors == sorted(errors, reverse=True)
    # P=1 matches the Lloyd-Max 1-bit Gaussian MSE, 1 - 2/pi ~ 0.363.
    assert abs(errors[0] - (1 - 2 / np.pi)) < 0.03
    # P=8 trimmed decode is already excellent.
    assert errors[-1] < 1e-3
    # Trimmed packet sizes scale with P but all remain far below MTU.
    sizes = [int(r[1]) for r in rows]
    assert sizes == sorted(sizes)
    assert sizes[-1] < 1500 * 0.4
