"""T1 — transport drop tolerance (Section 4.4 in-text claims).

On the discrete-event simulator: the go-back-N (NCCL/RoCE-like)
baseline's flow completion time explodes between 1-2 % drops, while the
trimming transport completes with zero retransmissions even when half
of its packets are trimmed, staying near the clean completion time.
"""

from repro.bench import emit, t1_transport_drops


def test_t1_transport_drops(benchmark):
    result = benchmark.pedantic(t1_transport_drops, rounds=1, iterations=1)
    emit("\n" + result.render())
    gbn = [r for r in result.rows if r[0] == "go-back-N"]
    trim = [r for r in result.rows if r[0] == "trimming"]
    slow_at = {row[1]: float(row[3].rstrip("x")) for row in gbn}
    assert slow_at["2.00%"] > 5.0  # 1-2% drops: 5-10x or worse
    assert slow_at["0.20%"] < 5.0  # ~0.2% is tolerable by comparison
    # Trimming transport: no retransmissions, FCT stays near clean GBN.
    for row in trim:
        assert row[4] == 0
        assert float(row[3].rstrip("x")) < 3.0
