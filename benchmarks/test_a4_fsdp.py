"""A4 — FSDP with trimmable weight gathers (Section 5.5).

The paper conjectures "a small fraction of imperfection in copied
weights has limited impact on training quality".  We train a sharded
model whose weight all-gathers cross an RHT trim channel at increasing
trim rates and report the final accuracy.
"""

from repro.bench import emit, format_table
from repro.core import RHTCodec
from repro.nn import MLP, make_dataset
from repro.train import FSDPTrainer, TrainConfig, TrimChannel


def run_a4():
    train, test = make_dataset(
        num_classes=10, train_per_class=30, test_per_class=10,
        image_size=8, noise=1.5, seed=0,
    )
    rows = []
    for trim_rate in [0.0, 0.3, 0.7]:
        model = MLP(192, [64], 10, seed=1)
        gather = TrimChannel(
            RHTCodec(root_seed=2, row_size=1024), trim_rate=trim_rate, seed=3
        )
        cfg = TrainConfig(epochs=8, batch_size=15, lr=0.1, seed=0, augment=False)
        trainer = FSDPTrainer(
            model, train, test, world_size=2, gather_channel=gather, config=cfg
        )
        history = trainer.train()
        rows.append(
            [
                f"{trim_rate:.0%}",
                f"{history[-1]['top1']:.3f}",
                f"{history[-1]['top5']:.3f}",
                f"{history[-1]['train_loss']:.3f}",
                gather.stats.packets_trimmed,
            ]
        )
    return rows


def test_a4_fsdp(benchmark):
    rows = benchmark.pedantic(run_a4, rounds=1, iterations=1)
    emit("\n" + format_table(
        ["gather trim rate", "final top1", "final top5", "train loss", "pkts trimmed"],
        rows,
        title="[A4] FSDP: trimmed weight gathers (Section 5.5)",
    ))
    accuracies = [float(row[1]) for row in rows]
    # Moderate trimming of gathered weights has limited impact (within
    # a band of the clean run) — the Section 5.5 conjecture.
    assert accuracies[1] > accuracies[0] - 0.15
    assert accuracies[2] > 0.3  # even 70% trim still trains
