"""A9 — world-size scaling under trimming.

The paper's testbed has two GPU servers.  At larger world sizes the
all-reduce *averages* each worker's independently-trimmed message, so
the variance of unbiased codecs (SQ) shrinks like 1/N while the sign
codec's bias does not average away — scale should widen the gap between
biased and unbiased encodings.
"""

from repro.bench import emit, format_table
from repro.bench.experiments import RHT_ROW_SIZE, _make_model, training_dataset
from repro.collectives import AllReduceHook
from repro.core import codec_by_name
from repro.train import DDPTrainer, TrainConfig, TrimChannel

TRIM_RATE = 0.5
EPOCHS = 6


def run_one(codec_name, world_size):
    train, test = training_dataset()
    model = _make_model()
    kwargs = {"row_size": RHT_ROW_SIZE} if codec_name == "rht" else {}
    codec = codec_by_name(codec_name, root_seed=3, **kwargs)
    hook = AllReduceHook(TrimChannel(codec, TRIM_RATE, seed=5))
    config = TrainConfig(
        epochs=EPOCHS, batch_size=16, lr=0.05, momentum=0.9,
        step_size=4, gamma=0.2, seed=0, augment=False,
    )
    trainer = DDPTrainer(
        model, train, test, world_size=world_size, hook=hook, config=config
    )
    return trainer.train()


def run_a9():
    rows = []
    results = {}
    for codec in ["sq", "sign"]:
        for world in [2, 4]:
            history = run_one(codec, world)
            results[(codec, world)] = history.final_top1
            rows.append(
                [codec, world, f"{history.final_top1:.3f}",
                 f"{history.records[-1].train_loss:.3f}"]
            )
    return rows, results


def test_a9_world_size(benchmark):
    rows, results = benchmark.pedantic(run_a9, rounds=1, iterations=1)
    emit("\n" + format_table(
        ["codec @ 50% trim", "world size", "final top1", "train loss"],
        rows,
        title="[A9] world-size scaling: averaging helps unbiased codecs",
    ))
    # SQ (unbiased): more workers average away trim noise.
    assert results[("sq", 4)] >= results[("sq", 2)] - 0.03
    # The unbiased codec keeps/extends its lead over sign at scale.
    gap_2 = results[("sq", 2)] - results[("sign", 2)]
    gap_4 = results[("sq", 4)] - results[("sign", 4)]
    assert gap_4 >= min(gap_2, 0.05) - 0.05
