"""Benchmark-suite plumbing.

pytest captures stdout at the file-descriptor level, so the result
tables the benchmarks emit would never reach the terminal.  This hook
replays everything recorded through :func:`repro.bench.emit` in the
terminal summary and archives it to ``benchmarks/results_latest.txt``.
"""

from pathlib import Path

from repro.bench.harness import EMITTED


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not EMITTED:
        return
    terminalreporter.section("paper figure/table reproductions")
    for block in EMITTED:
        for line in block.splitlines():
            terminalreporter.write_line(line)
    archive = Path(__file__).parent / "results_latest.txt"
    archive.write_text("\n".join(EMITTED) + "\n")
    terminalreporter.write_line(f"\n(archived to {archive})")
