"""Benchmark-suite plumbing.

pytest captures stdout at the file-descriptor level, so the result
tables the benchmarks emit would never reach the terminal.  This hook
replays everything recorded through :func:`repro.bench.emit` in the
terminal summary and archives it twice: the human-readable blocks to
``benchmarks/results_latest.txt`` and the machine-readable records
(every rendered :class:`repro.bench.ExperimentResult` plus any
``record_result`` call) to ``benchmarks/results_latest.json``.

``benchmarks/BENCH_results.json`` is the *committed baseline* that
``repro-bench --compare`` (and the CI ``perf-smoke`` job) checks the
latest run against — it is only rewritten deliberately, via
``repro-bench --compare --update-baseline``.
"""

import json
from pathlib import Path

from repro.bench.harness import EMITTED, RESULTS


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not EMITTED and not RESULTS:
        return
    here = Path(__file__).parent
    if EMITTED:
        terminalreporter.section("paper figure/table reproductions")
        for block in EMITTED:
            for line in block.splitlines():
                terminalreporter.write_line(line)
        archive = here / "results_latest.txt"
        archive.write_text("\n".join(EMITTED) + "\n")
        terminalreporter.write_line(f"\n(archived to {archive})")
    if RESULTS:
        json_archive = here / "results_latest.json"
        json_archive.write_text(
            json.dumps(RESULTS, indent=2, sort_keys=True) + "\n"
        )
        terminalreporter.write_line(f"(machine-readable: {json_archive})")
